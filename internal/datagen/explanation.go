package datagen

import (
	"math"
	"math/rand"

	"wmsketch/internal/stream"
)

// ExplanationConfig parameterizes the FEC-disbursements substitute for the
// streaming-explanation experiment (Section 8.1): rows of categorical
// attributes where a subset of attribute values is predictive of the
// outlier label (high relative risk), a subset is anti-predictive (risk
// < 1), and some values are frequent in BOTH classes — the case that wastes
// heavy-hitter capacity.
type ExplanationConfig struct {
	// Fields is the number of categorical attributes per row.
	Fields int
	// Cardinality is the number of distinct values per attribute field.
	Cardinality int
	// OutlierRate is p(y=+1), the fraction of outlier rows (the paper uses
	// the top-20% of disbursements by amount).
	OutlierRate float64
	// HighRiskPerField is the number of values per field boosted in the
	// outlier class (relative risk > 1).
	HighRiskPerField int
	// LowRiskPerField is the number of values per field boosted in the
	// inlier class (relative risk < 1).
	LowRiskPerField int
	// Boost multiplies the within-class probability of planted values.
	// Larger boosts produce more extreme relative risks, mirroring the
	// near-deterministic attributes (e.g. recipient names) of the FEC data.
	Boost float64
	// BaseSkew is the exponent of the 1/(rank+1)^skew base popularity; a
	// mild skew keeps some values frequent in both classes without making
	// the tail unobservably rare.
	BaseSkew float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultExplanationConfig mirrors the FEC experiment's scale at laptop
// size: 6 fields of 2000 values, 20% outliers, strongly boosted planted
// values spread across the whole popularity spectrum.
func DefaultExplanationConfig(seed int64) ExplanationConfig {
	return ExplanationConfig{
		Fields:           6,
		Cardinality:      2_000,
		OutlierRate:      0.2,
		HighRiskPerField: 50,
		LowRiskPerField:  50,
		Boost:            20,
		BaseSkew:         0.6,
		Seed:             seed,
	}
}

// Explanation generates labeled attribute rows. Feature identifiers encode
// (field, value) pairs as field*Cardinality + value.
type Explanation struct {
	cfg ExplanationConfig
	rng *rand.Rand
	// cumulative per-class samplers, one pair per field.
	posCum [][]float64
	negCum [][]float64
	// planted sets for ground-truth checks.
	highRisk map[uint32]bool
	lowRisk  map[uint32]bool
}

// NewExplanation returns a generator for the given configuration.
func NewExplanation(cfg ExplanationConfig) *Explanation {
	if cfg.Fields <= 0 || cfg.Cardinality <= 1 {
		panic("datagen: bad explanation shape")
	}
	if cfg.OutlierRate <= 0 || cfg.OutlierRate >= 1 {
		panic("datagen: OutlierRate must be in (0,1)")
	}
	if cfg.HighRiskPerField+cfg.LowRiskPerField >= cfg.Cardinality {
		panic("datagen: planted values exceed cardinality")
	}
	if cfg.Boost <= 1 {
		panic("datagen: Boost must exceed 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &Explanation{
		cfg:      cfg,
		rng:      rng,
		posCum:   make([][]float64, cfg.Fields),
		negCum:   make([][]float64, cfg.Fields),
		highRisk: make(map[uint32]bool),
		lowRisk:  make(map[uint32]bool),
	}
	skew := cfg.BaseSkew
	if skew <= 0 {
		skew = 0.6
	}
	for f := 0; f < cfg.Fields; f++ {
		// Base popularity: mildly skewed 1/(rank+1)^skew so the head is
		// frequent in both classes but the tail remains observable.
		base := make([]float64, cfg.Cardinality)
		for v := range base {
			base[v] = math.Pow(float64(v+1), -skew)
		}
		pos := append([]float64(nil), base...)
		neg := append([]float64(nil), base...)
		// Plant boosted values across the entire popularity spectrum, as in
		// the FEC data where frequent attributes (states, categories) also
		// carry extreme risks.
		perm := rng.Perm(cfg.Cardinality)
		idx := 0
		for i := 0; i < cfg.HighRiskPerField; i++ {
			v := perm[idx]
			idx++
			pos[v] *= cfg.Boost
			e.highRisk[e.Encode(f, v)] = true
		}
		for i := 0; i < cfg.LowRiskPerField; i++ {
			v := perm[idx]
			idx++
			neg[v] *= cfg.Boost
			e.lowRisk[e.Encode(f, v)] = true
		}
		e.posCum[f] = cumulative(pos)
		e.negCum[f] = cumulative(neg)
	}
	return e
}

func cumulative(ws []float64) []float64 {
	out := make([]float64, len(ws))
	sum := 0.0
	for i, w := range ws {
		sum += w
		out[i] = sum
	}
	return out
}

// sampleCum draws an index from a cumulative weight table.
func sampleCum(rng *rand.Rand, cum []float64) int {
	u := rng.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Encode maps (field, value) to a feature identifier.
func (e *Explanation) Encode(field, value int) uint32 {
	return uint32(field*e.cfg.Cardinality + value)
}

// Row is one generated disbursement-like record.
type Row struct {
	// Attrs holds one encoded feature per field.
	Attrs []uint32
	// Y is +1 for outlier rows, −1 for inliers.
	Y int
}

// Next draws one labeled row.
func (e *Explanation) Next() Row {
	y := -1
	cums := e.negCum
	if e.rng.Float64() < e.cfg.OutlierRate {
		y = 1
		cums = e.posCum
	}
	attrs := make([]uint32, e.cfg.Fields)
	for f := 0; f < e.cfg.Fields; f++ {
		attrs[f] = e.Encode(f, sampleCum(e.rng, cums[f]))
	}
	return Row{Attrs: attrs, Y: y}
}

// Examples expands a row into the paper's 1-sparse encoding: one unit
// feature vector per attribute, all sharing the row label (footnote 4).
func (r Row) Examples() []stream.Example {
	out := make([]stream.Example, len(r.Attrs))
	for i, a := range r.Attrs {
		out[i] = stream.Example{X: stream.OneHot(a), Y: r.Y}
	}
	return out
}

// HighRiskFeatures returns the planted high-relative-risk feature set.
func (e *Explanation) HighRiskFeatures() map[uint32]bool {
	return copySet(e.highRisk)
}

// LowRiskFeatures returns the planted low-relative-risk feature set.
func (e *Explanation) LowRiskFeatures() map[uint32]bool {
	return copySet(e.lowRisk)
}

// NumFeatures returns the size of the encoded feature space.
func (e *Explanation) NumFeatures() int { return e.cfg.Fields * e.cfg.Cardinality }

func copySet(s map[uint32]bool) map[uint32]bool {
	out := make(map[uint32]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}
