package datagen

import (
	"math"
	"testing"

	"wmsketch/internal/metrics"
)

func TestClassificationDeterministic(t *testing.T) {
	a := RCV1Like(1)
	b := RCV1Like(1)
	for i := 0; i < 100; i++ {
		ea, eb := a.Next(), b.Next()
		if ea.Y != eb.Y || len(ea.X) != len(eb.X) {
			t.Fatal("same seed produced different streams")
		}
		for j := range ea.X {
			if ea.X[j] != eb.X[j] {
				t.Fatal("same seed produced different features")
			}
		}
	}
}

func TestClassificationShape(t *testing.T) {
	g := RCV1Like(2)
	for i := 0; i < 200; i++ {
		ex := g.Next()
		if len(ex.X) != 20 {
			t.Fatalf("nnz = %d, want 20", len(ex.X))
		}
		if ex.Y != 1 && ex.Y != -1 {
			t.Fatalf("label = %d", ex.Y)
		}
		seen := map[uint32]bool{}
		for _, f := range ex.X {
			if f.Value != 1 {
				t.Fatalf("feature value %g, want 1", f.Value)
			}
			if int(f.Index) >= g.Dim() {
				t.Fatalf("index %d out of range", f.Index)
			}
			if seen[f.Index] {
				t.Fatal("duplicate feature index in example")
			}
			seen[f.Index] = true
		}
	}
}

func TestClassificationLabelsCorrelateWithWeights(t *testing.T) {
	g := NewClassification(ClassificationConfig{
		Name: "t", D: 1000, NNZ: 5, ZipfS: 1.3,
		NumSignal: 20, SignalMinRank: 0, SignalMaxRank: 100,
		WeightScale: 6, Seed: 3,
	})
	weights := g.TrueWeights()
	if len(weights) != 20 {
		t.Fatalf("planted %d weights, want 20", len(weights))
	}
	// Labels must agree with the sign of the planted margin far more often
	// than chance.
	agree, total := 0, 0
	for i := 0; i < 20000; i++ {
		ex := g.Next()
		margin := 0.0
		for _, f := range ex.X {
			margin += weights[f.Index]
		}
		if math.Abs(margin) < 2 {
			continue // low-confidence examples are noisy by design
		}
		total++
		if (margin > 0) == (ex.Y == 1) {
			agree++
		}
	}
	if total < 100 {
		t.Fatalf("too few confident examples (%d) — generator mis-tuned", total)
	}
	if rate := float64(agree) / float64(total); rate < 0.85 {
		t.Fatalf("label agreement %.3f, want ≥ 0.85", rate)
	}
}

func TestClassificationZipfSkew(t *testing.T) {
	g := RCV1Like(4)
	counts := map[uint32]int{}
	for i := 0; i < 5000; i++ {
		for _, f := range g.Next().X {
			counts[f.Index]++
		}
	}
	// Rank 0 must be far more frequent than rank 1000.
	if counts[0] < 10*counts[1000]+1 {
		t.Fatalf("frequency skew too weak: rank0=%d rank1000=%d", counts[0], counts[1000])
	}
}

func TestURLLikeSignalIsRare(t *testing.T) {
	g := URLLike(5)
	weights := g.TrueWeights()
	for i := range weights {
		if i < 3000 {
			t.Fatalf("URL-like signal feature %d below min rank 3000", i)
		}
	}
}

func TestClassificationConfigValidation(t *testing.T) {
	bad := []ClassificationConfig{
		{D: 0, NNZ: 1, ZipfS: 1.2, SignalMaxRank: 1},
		{D: 10, NNZ: 20, ZipfS: 1.2, SignalMaxRank: 5},
		{D: 10, NNZ: 2, ZipfS: 0.9, SignalMaxRank: 5},
		{D: 10, NNZ: 2, ZipfS: 1.2, SignalMinRank: 5, SignalMaxRank: 5},
		{D: 10, NNZ: 2, ZipfS: 1.2, SignalMinRank: 0, SignalMaxRank: 4, NumSignal: 10},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: expected panic", i)
				}
			}()
			NewClassification(cfg)
		}()
	}
}

func TestExplanationPlantedRisks(t *testing.T) {
	e := NewExplanation(DefaultExplanationConfig(7))
	tracker := metrics.NewRiskTracker()
	for i := 0; i < 60000; i++ {
		row := e.Next()
		for _, a := range row.Attrs {
			tracker.Observe(a, row.Y)
		}
	}
	// Planted high-risk features should have median empirical risk well
	// above 1; low-risk well below 1.
	var hi, lo []float64
	for f := range e.HighRiskFeatures() {
		if r := tracker.RelativeRisk(f); !math.IsNaN(r) && !math.IsInf(r, 0) {
			hi = append(hi, r)
		}
	}
	for f := range e.LowRiskFeatures() {
		if r := tracker.RelativeRisk(f); !math.IsNaN(r) && !math.IsInf(r, 0) {
			lo = append(lo, r)
		}
	}
	if len(hi) < 50 || len(lo) < 50 {
		t.Fatalf("too few measurable planted features: %d hi, %d lo", len(hi), len(lo))
	}
	if m := median(hi); m < 2 {
		t.Fatalf("median high-risk %g, want ≥ 2", m)
	}
	if m := median(lo); m > 0.7 {
		t.Fatalf("median low-risk %g, want ≤ 0.7", m)
	}
}

func TestExplanationOutlierRate(t *testing.T) {
	e := NewExplanation(DefaultExplanationConfig(8))
	pos := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if e.Next().Y == 1 {
			pos++
		}
	}
	rate := float64(pos) / n
	if math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("outlier rate %.3f, want ≈0.2", rate)
	}
}

func TestExplanationRowEncoding(t *testing.T) {
	e := NewExplanation(DefaultExplanationConfig(9))
	row := e.Next()
	if len(row.Attrs) != 6 {
		t.Fatalf("fields = %d", len(row.Attrs))
	}
	for f, a := range row.Attrs {
		if int(a)/2000 != f {
			t.Fatalf("attr %d encoded into wrong field block: %d", f, a)
		}
	}
	exs := row.Examples()
	if len(exs) != 6 {
		t.Fatalf("examples = %d", len(exs))
	}
	for i, ex := range exs {
		if len(ex.X) != 1 || ex.X[0].Value != 1 || ex.Y != row.Y {
			t.Fatalf("example %d malformed: %+v", i, ex)
		}
	}
}

func TestPacketTracePlantedRatios(t *testing.T) {
	pt := NewPacketTrace(DefaultPacketTraceConfig(10))
	out := map[uint32]int{}
	in := map[uint32]int{}
	for i := 0; i < 400000; i++ {
		p := pt.Next()
		if p.Outbound {
			out[p.IP]++
		} else {
			in[p.IP]++
		}
	}
	// Measured ratios of well-observed planted deltoids must be large.
	good, checked := 0, 0
	for ip := range pt.OutboundDeltoids() {
		o, i := out[ip], in[ip]
		if o+i < 50 {
			continue
		}
		checked++
		ratio := float64(o) / math.Max(float64(i), 0.5)
		if ratio > 8 {
			good++
		}
	}
	if checked < 20 {
		t.Fatalf("too few observable deltoids (%d)", checked)
	}
	if float64(good)/float64(checked) < 0.9 {
		t.Fatalf("only %d/%d planted deltoids show ratio > 8", good, checked)
	}
	// Non-planted IPs should be near 1:1.
	if o, i := out[0], in[0]; o+i > 1000 {
		ratio := float64(o) / float64(i)
		if ratio > 1.3 || ratio < 0.77 {
			t.Fatalf("non-deltoid rank-0 ratio %.2f, want ≈1", ratio)
		}
	}
}

func TestPacketTraceDisjointDeltoidSets(t *testing.T) {
	pt := NewPacketTrace(DefaultPacketTraceConfig(11))
	for ip := range pt.OutboundDeltoids() {
		if pt.InboundDeltoids()[ip] {
			t.Fatalf("ip %d planted on both sides", ip)
		}
	}
}

func TestCorpusPlantedPairsHavePositivePMI(t *testing.T) {
	c := NewCorpus(DefaultCorpusConfig(12))
	tracker := metrics.NewPMITracker()
	win := NewBigramWindow(2)
	for i := 0; i < 300000; i++ {
		tok := c.NextToken()
		tracker.ObserveUnigram(tok)
		win.Push(tok, tracker.ObserveBigram)
	}
	measurable, positive := 0, 0
	for _, p := range c.PlantedPairs() {
		pmi := tracker.PMI(p.U, p.V)
		if math.IsNaN(pmi) {
			continue
		}
		measurable++
		if pmi > 1 {
			positive++
		}
	}
	if measurable < 30 {
		t.Fatalf("too few measurable pairs (%d)", measurable)
	}
	if float64(positive)/float64(measurable) < 0.9 {
		t.Fatalf("only %d/%d planted pairs have PMI > 1", positive, measurable)
	}
}

func TestCorpusIsPlanted(t *testing.T) {
	c := NewCorpus(DefaultCorpusConfig(13))
	pairs := c.PlantedPairs()
	// A few of the nominal 1000 pairs are dropped as duplicates.
	if len(pairs) < 900 || len(pairs) > 1000 {
		t.Fatalf("planted %d pairs", len(pairs))
	}
	if !c.IsPlanted(pairs[0].U, pairs[0].V) {
		t.Fatal("IsPlanted false for planted pair")
	}
	if c.IsPlanted(pairs[0].V, pairs[0].U) && pairs[0].U != pairs[0].V {
		t.Fatal("IsPlanted must be order-sensitive")
	}
}

func TestBigramWindow(t *testing.T) {
	win := NewBigramWindow(3)
	var got [][2]uint32
	record := func(u, v uint32) { got = append(got, [2]uint32{u, v}) }
	for _, tok := range []uint32{1, 2, 3, 4, 5} {
		win.Push(tok, record)
	}
	// Expected: (1,2) (1,3)(2,3) (1,4)(2,4)(3,4) (2,5)(3,5)(4,5).
	want := [][2]uint32{{1, 2}, {1, 3}, {2, 3}, {1, 4}, {2, 4}, {3, 4}, {2, 5}, {3, 5}, {4, 5}}
	if len(got) != len(want) {
		t.Fatalf("got %d bigrams, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bigram %d = %v, want %v", i, got[i], want[i])
		}
	}
	win.Reset()
	got = nil
	win.Push(9, record)
	if len(got) != 0 {
		t.Fatal("Reset did not clear history")
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func BenchmarkClassificationNext(b *testing.B) {
	g := RCV1Like(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkPacketTraceNext(b *testing.B) {
	pt := NewPacketTrace(DefaultPacketTraceConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Next()
	}
}
