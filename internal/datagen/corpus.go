package datagen

import (
	"math"
	"math/rand"
)

// CorpusConfig parameterizes the newswire-corpus substitute for the
// streaming PMI experiment (Section 8.3): a Zipf unigram distribution with
// planted associated token pairs spanning the frequency spectrum, mirroring
// natural language where frequent collocations ("of the") have modest PMI
// and rare collocations ("prime minister") have high PMI.
type CorpusConfig struct {
	// Vocab is the vocabulary size.
	Vocab int
	// ZipfS is the Zipf exponent of token frequency.
	ZipfS float64
	// NumPairs is the number of planted associated pairs. Pair i draws its
	// members from popularity rank ≈ PairMinRank·(PairMaxRank/PairMinRank)^(i/N)
	// (geometric spacing), and is emitted with probability proportional to
	// 1/(i+1)^PairZipfS — so early pairs are frequent with moderate PMI and
	// late pairs are rare with high PMI.
	NumPairs int
	// PairRate is the probability that a generation step emits a planted
	// pair (two adjacent tokens) instead of a single independent token.
	PairRate float64
	// PairZipfS skews emission probability across planted pairs.
	PairZipfS float64
	// PairMinRank/PairMaxRank bound the popularity ranks of pair members.
	PairMinRank int
	PairMaxRank int
	// Seed drives all randomness.
	Seed int64
}

// DefaultCorpusConfig mirrors the PMI experiment at laptop scale.
func DefaultCorpusConfig(seed int64) CorpusConfig {
	return CorpusConfig{
		Vocab:       50_000,
		ZipfS:       1.15,
		NumPairs:    1_000,
		PairRate:    0.3,
		PairZipfS:   0.8,
		PairMinRank: 50,
		PairMaxRank: 20_000,
		Seed:        seed,
	}
}

// TokenPair is an ordered planted pair.
type TokenPair struct {
	U, V uint32
}

// Corpus generates a token stream with planted co-occurrences.
type Corpus struct {
	cfg     CorpusConfig
	rng     *rand.Rand
	zipf    *rand.Zipf
	pairs   []TokenPair
	pairSet map[TokenPair]bool
	pairCum []float64 // cumulative emission weights over pairs
	// pending holds the second token of a planted pair awaiting emission.
	pending uint32
	hasPend bool
}

// NewCorpus returns a generator for the given configuration.
func NewCorpus(cfg CorpusConfig) *Corpus {
	if cfg.Vocab <= 0 {
		panic("datagen: Vocab must be positive")
	}
	if cfg.ZipfS <= 1 {
		panic("datagen: ZipfS must exceed 1")
	}
	if cfg.PairRate < 0 || cfg.PairRate >= 1 {
		panic("datagen: PairRate must be in [0,1)")
	}
	if cfg.PairZipfS <= 0 {
		cfg.PairZipfS = 0.8
	}
	if cfg.PairMaxRank <= cfg.PairMinRank || cfg.PairMaxRank > cfg.Vocab {
		panic("datagen: bad pair rank range")
	}
	if cfg.NumPairs < 1 {
		panic("datagen: NumPairs must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{
		cfg:     cfg,
		rng:     rng,
		zipf:    rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Vocab-1)),
		pairSet: make(map[TokenPair]bool, cfg.NumPairs),
	}
	// Pair i draws members near geometric rank r_i; a small jitter keeps
	// members distinct across pairs.
	span := float64(cfg.PairMaxRank) / float64(cfg.PairMinRank)
	weights := make([]float64, 0, cfg.NumPairs)
	for i := 0; i < cfg.NumPairs; i++ {
		frac := float64(i) / float64(cfg.NumPairs)
		base := float64(cfg.PairMinRank) * math.Pow(span, frac)
		u := uint32(base * (1 + 0.2*rng.Float64()))
		v := uint32(base * (1.2 + 0.2*rng.Float64()))
		p := TokenPair{U: u, V: v}
		if c.pairSet[p] || u == v {
			continue
		}
		c.pairs = append(c.pairs, p)
		c.pairSet[p] = true
		weights = append(weights, math.Pow(float64(len(c.pairs)), -cfg.PairZipfS))
	}
	c.pairCum = cumulative(weights)
	return c
}

// NextToken emits the next token of the stream. Planted pairs are emitted
// as two consecutive tokens, which concentrates their joint probability far
// above the product of their marginals (positive PMI).
func (c *Corpus) NextToken() uint32 {
	if c.hasPend {
		c.hasPend = false
		return c.pending
	}
	if c.rng.Float64() < c.cfg.PairRate {
		p := c.pairs[sampleCum(c.rng, c.pairCum)]
		c.pending = p.V
		c.hasPend = true
		return p.U
	}
	return uint32(c.zipf.Uint64())
}

// Tokens returns the next n tokens.
func (c *Corpus) Tokens(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = c.NextToken()
	}
	return out
}

// PlantedPairs returns the planted high-PMI pairs.
func (c *Corpus) PlantedPairs() []TokenPair {
	out := make([]TokenPair, len(c.pairs))
	copy(out, c.pairs)
	return out
}

// IsPlanted reports whether (u, v) is a planted pair.
func (c *Corpus) IsPlanted(u, v uint32) bool {
	return c.pairSet[TokenPair{U: u, V: v}]
}

// BigramWindow iterates sliding-window bigrams over a token stream,
// mirroring the paper's 5-6 token co-occurrence windows. For each new token
// t it yields (prev, t) for every prev in the preceding window.
type BigramWindow struct {
	window  int
	history []uint32
}

// NewBigramWindow returns a sliding window of the given width.
func NewBigramWindow(window int) *BigramWindow {
	if window <= 0 {
		panic("datagen: window must be positive")
	}
	return &BigramWindow{window: window}
}

// Push adds a token and invokes fn for each (prev, token) bigram formed
// with the current window contents.
func (b *BigramWindow) Push(token uint32, fn func(u, v uint32)) {
	for _, prev := range b.history {
		fn(prev, token)
	}
	b.history = append(b.history, token)
	if len(b.history) > b.window {
		b.history = b.history[1:]
	}
}

// Reset clears the window (e.g. at document boundaries).
func (b *BigramWindow) Reset() { b.history = b.history[:0] }
