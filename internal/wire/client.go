package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"wmsketch/internal/stream"
)

// Client is a pipelining binary-protocol client. Many calls may be in
// flight on one connection: Go queues a request frame and returns a Call
// handle immediately; a background reader pairs response frames back to
// their Calls by tag, in whatever order the server completes them. The
// synchronous wrappers (Update, Predict, Estimate, Ping) are one-call
// conveniences built on the same machinery.
//
// Concurrency: Go/Flush and the synchronous wrappers are safe for
// concurrent use. A Call must not be reused until its Wait returns.
type Client struct {
	conn net.Conn

	// wmu serializes frame writes and tag assignment; pending registration
	// happens under it too, BEFORE the frame is written, so a response can
	// never arrive for an unregistered tag.
	wmu    sync.Mutex
	bw     *bufio.Writer
	tag    uint32
	encBuf []byte // scratch for the synchronous wrappers' payload encoding

	// mu guards pending and the sticky transport error.
	mu      sync.Mutex
	pending map[uint32]*Call
	err     error

	readerDone chan struct{}
}

// Call is one in-flight request. Wait blocks until the response arrives
// (or the connection fails) and returns the status and payload; the
// payload is owned by the Call and valid until the Call is reused.
type Call struct {
	done    chan struct{}
	status  byte
	payload []byte
	err     error
}

// Wait blocks for the response. The returned payload aliases the Call's
// internal buffer.
func (call *Call) Wait() (status byte, payload []byte, err error) {
	<-call.done
	return call.status, call.payload, call.err
}

// RemoteError is a non-OK response status with its server-sent message —
// the binary analog of an HTTP 4xx/5xx body.
type RemoteError struct {
	Status byte
	Msg    string
}

func (e *RemoteError) Error() string {
	kind := "server error"
	if e.Status == StatusBadRequest {
		kind = "bad request"
	}
	return fmt.Sprintf("wire: %s: %s", kind, e.Msg)
}

// Dial connects, performs the handshake, and starts the response reader.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection: it sends the client
// preamble, validates the server's, and starts the response reader. On
// error the connection is left to the caller to close.
func NewClient(conn net.Conn) (*Client, error) {
	if err := WriteHandshake(conn); err != nil {
		return nil, fmt.Errorf("wire: handshake write: %w", err)
	}
	if err := ReadHandshake(conn); err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriterSize(conn, 64<<10),
		pending:    make(map[uint32]*Call),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop pairs response frames to pending Calls by tag until the
// connection closes or breaks; any exit reason becomes the sticky error
// failing all current and future calls.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var buf []byte
	for {
		resp, grown, err := ReadResponseFrame(br, buf)
		buf = grown
		if err != nil {
			c.failAll(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		call, ok := c.pending[resp.Tag]
		delete(c.pending, resp.Tag)
		c.mu.Unlock()
		if !ok {
			// A tag we never issued (or already completed): the stream can
			// no longer be trusted.
			c.failAll(fmt.Errorf("wire: response for unknown tag %d", resp.Tag))
			return
		}
		call.status = resp.Status
		call.payload = append(call.payload[:0], resp.Payload...)
		call.err = nil
		close(call.done)
	}
}

// failAll poisons the client and completes every pending call with err.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	calls := c.pending
	c.pending = make(map[uint32]*Call)
	c.mu.Unlock()
	for _, call := range calls {
		call.err = err
		close(call.done)
	}
}

// Go queues one request frame for op with the given payload and returns
// its Call. The frame sits in the client's write buffer until Flush (or
// until the buffer fills); pipelined callers batch several Go calls per
// Flush. Passing a previously-completed Call recycles its buffers.
func (c *Client) Go(op byte, payload []byte, call *Call) (*Call, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.send(op, payload, call)
}

// send registers and writes one frame. Caller holds wmu.
func (c *Client) send(op byte, payload []byte, call *Call) (*Call, error) {
	if call == nil {
		call = &Call{}
	}
	call.done = make(chan struct{})
	call.err = nil

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.tag++
	tag := c.tag
	c.pending[tag] = call
	c.mu.Unlock()

	if _, err := WriteFrame(c.bw, op, tag, payload); err != nil {
		c.dropPending(tag)
		c.failAll(err)
		return nil, err
	}
	return call, nil
}

// dropPending unregisters a tag whose frame never made it onto the wire.
func (c *Client) dropPending(tag uint32) {
	c.mu.Lock()
	delete(c.pending, tag)
	c.mu.Unlock()
}

// Flush pushes buffered request frames onto the connection.
func (c *Client) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.bw.Flush(); err != nil {
		c.failAll(err)
		return err
	}
	return nil
}

// Close tears the connection down and fails any in-flight calls.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// roundTrip is the synchronous path: encode into encBuf, queue, and flush
// in one wmu critical section (encBuf must not be reused by a concurrent
// caller until the frame is on the wire), then wait and surface non-OK
// statuses as *RemoteError.
func (c *Client) roundTrip(op byte, encode func(dst []byte) ([]byte, error)) ([]byte, error) {
	c.wmu.Lock()
	payload, err := encode(c.encBuf[:0])
	if err != nil {
		c.wmu.Unlock()
		return nil, err
	}
	c.encBuf = payload
	call, err := c.send(op, payload, nil)
	if err == nil {
		if ferr := c.bw.Flush(); ferr != nil {
			err = ferr
			c.failAll(ferr)
		}
	}
	c.wmu.Unlock()
	if err != nil {
		return nil, err
	}
	status, resp, err := call.Wait()
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		msg, derr := DecodeErrorResponse(resp)
		if derr != nil {
			msg = derr.Error()
		}
		return nil, &RemoteError{Status: status, Msg: msg}
	}
	return resp, nil
}

// Update trains the server on a batch and returns the applied count and
// the backend's step counter after the batch.
func (c *Client) Update(batch []stream.Example) (applied int, steps int64, err error) {
	resp, err := c.roundTrip(OpUpdate, func(dst []byte) ([]byte, error) {
		return AppendUpdateRequest(dst, batch)
	})
	if err != nil {
		return 0, 0, err
	}
	return DecodeUpdateResponse(resp)
}

// Predict scores one feature vector.
func (c *Client) Predict(x stream.Vector) (margin float64, label int, err error) {
	resp, err := c.roundTrip(OpPredict, func(dst []byte) ([]byte, error) {
		return AppendPredictRequest(dst, x)
	})
	if err != nil {
		return 0, 0, err
	}
	return DecodePredictResponse(resp)
}

// Estimate returns the estimated weight for each index, in order.
func (c *Client) Estimate(indices []uint32) ([]float64, error) {
	resp, err := c.roundTrip(OpEstimate, func(dst []byte) ([]byte, error) {
		return AppendEstimateRequest(dst, indices)
	})
	if err != nil {
		return nil, err
	}
	return DecodeEstimateResponse(resp, nil)
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.roundTrip(OpPing, func(dst []byte) ([]byte, error) { return dst, nil })
	return err
}
