package wire

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"wmsketch/internal/stream"
)

// Golden wire vectors: the committed bytes in testdata/ pin the version-1
// frame encoding. If any of these tests fail after an intentional format
// change, that change is a protocol break — bump Version and regenerate
// with
//
//	go test ./internal/wire -run TestGolden -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden wire vectors")

// goldenFrames builds the canonical frame sequence: every op and every
// response shape, with fixed payload contents.
func goldenFrames() ([]byte, error) {
	var buf bytes.Buffer
	add := func(kind byte, tag uint32, payload []byte, err error) error {
		if err != nil {
			return err
		}
		_, werr := WriteFrame(&buf, kind, tag, payload)
		return werr
	}

	upd, err := AppendUpdateRequest(nil, []stream.Example{
		{Y: 1, X: stream.Vector{{Index: 1, Value: 0.5}, {Index: 300, Value: -1.25}}},
		{Y: -1, X: stream.Vector{{Index: 4294967295, Value: 2}}},
	})
	if err := add(OpUpdate, 0x01020304, upd, err); err != nil {
		return nil, err
	}
	pred, err := AppendPredictRequest(nil, stream.Vector{{Index: 7, Value: 1.5}})
	if err := add(OpPredict, 2, pred, err); err != nil {
		return nil, err
	}
	est, err := AppendEstimateRequest(nil, []uint32{0, 128, 65536})
	if err := add(OpEstimate, 3, est, err); err != nil {
		return nil, err
	}
	if err := add(OpPing, 4, nil, nil); err != nil {
		return nil, err
	}
	if err := add(StatusOK, 0x01020304, AppendUpdateResponse(nil, 2, 1000), nil); err != nil {
		return nil, err
	}
	if err := add(StatusOK, 2, AppendPredictResponse(nil, -0.75, -1), nil); err != nil {
		return nil, err
	}
	if err := add(StatusOK, 3, AppendEstimateResponse(nil, []float64{0.125, -2, 0}), nil); err != nil {
		return nil, err
	}
	if err := add(StatusBadRequest, 5, AppendErrorResponse(nil, "example 0: label must be +1 or -1, got byte 0x02"), nil); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func goldenPath() string { return filepath.Join("testdata", "golden_frames_v1.bin") }

func TestGoldenVectors(t *testing.T) {
	want, err := goldenFrames()
	if err != nil {
		t.Fatalf("build golden frames: %v", err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), want, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(want), goldenPath())
	}
	got, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoder output diverged from committed golden bytes "+
			"(%d vs %d bytes) — this is a version-1 protocol break", len(want), len(got))
	}
}

// TestGoldenDecode walks the committed bytes through the decoders and
// re-encodes each frame, requiring bit-exactness both ways.
func TestGoldenDecode(t *testing.T) {
	blob, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update-golden): %v", err)
	}
	// The first four frames are requests, the rest responses.
	r := bytes.NewReader(blob)
	var rebuilt bytes.Buffer
	var buf []byte
	for i := 0; i < 4; i++ {
		req, grown, err := ReadRequestFrame(r, buf)
		buf = grown
		if err != nil {
			t.Fatalf("request frame %d: %v", i, err)
		}
		reenc, err := reencodeRequest(req)
		if err != nil {
			t.Fatalf("request frame %d: %v", i, err)
		}
		if _, err := WriteFrame(&rebuilt, req.Op, req.Tag, reenc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; ; i++ {
		resp, grown, err := ReadResponseFrame(r, buf)
		buf = grown
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("response frame %d: %v", i, err)
		}
		if _, err := WriteFrame(&rebuilt, resp.Status, resp.Tag,
			append([]byte(nil), resp.Payload...)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(rebuilt.Bytes(), blob) {
		t.Fatal("decode→re-encode did not reproduce the golden bytes")
	}
}

func reencodeRequest(req RequestFrame) ([]byte, error) {
	switch req.Op {
	case OpUpdate:
		batch, _, err := DecodeUpdateRequest(req.Payload, nil)
		if err != nil {
			return nil, err
		}
		return AppendUpdateRequest(nil, batch)
	case OpPredict:
		x, err := DecodePredictRequest(req.Payload, nil)
		if err != nil {
			return nil, err
		}
		return AppendPredictRequest(nil, x)
	case OpEstimate:
		idx, err := DecodeEstimateRequest(req.Payload, nil)
		if err != nil {
			return nil, err
		}
		return AppendEstimateRequest(nil, idx)
	case OpPing:
		if len(req.Payload) != 0 {
			return nil, fmt.Errorf("ping with %d payload bytes", len(req.Payload))
		}
		return nil, nil
	}
	return nil, fmt.Errorf("unknown op %d", req.Op)
}
