package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"wmsketch/internal/stream"
)

// Payload codecs (all little-endian, matching the gossip wire and the
// checkpoint format):
//
//	update request    uvarint count ≥ 1
//	                  per example: label byte (0x01 = +1, 0xFF = -1),
//	                               uvarint nnz, nnz × feature
//	feature           uvarint index (≤ MaxUint32), float64 bits value
//	update response   uvarint applied, uvarint steps
//	predict request   uvarint nnz, nnz × feature
//	predict response  float64 bits margin, label byte
//	estimate request  uvarint count ≥ 1, count × uvarint index
//	estimate response uvarint count, count × float64 bits weight
//	                  (request order; the requester pairs them with its
//	                  own indices)
//	ping              empty both ways
//	error response    raw UTF-8 message (≤ MaxErrorBytes)
//
// Every decoder consumes its payload exactly — trailing bytes are a
// malformed request — and rejects non-finite floats centrally, the same
// contract the JSON path enforces in toVector. Encoders are append-style
// so callers can pool the destination buffers.

// reader is a bounds-checked cursor over one frame payload.
type reader struct {
	b   []byte
	off int
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("truncated payload")
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads a uvarint and bounds it — the decode-bounds sanitizer every
// allocation-sizing count must pass through.
func (r *reader) count(limit int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) {
		return 0, fmt.Errorf("count %d exceeds limit %d", v, limit)
	}
	return int(v), nil
}

// f64 decodes one float64 and rejects NaN/±Inf centrally: no payload field
// legitimately carries a non-finite value, and one smuggled past here
// would poison model state while comparing false against every bound.
func (r *reader) f64() (float64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("truncated float")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value on the wire (%g)", v)
	}
	return v, nil
}

func (r *reader) index() (uint32, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("feature index %d overflows uint32", v)
	}
	return uint32(v), nil
}

// done requires the payload to be fully consumed.
func (r *reader) done() error {
	if n := r.remaining(); n > 0 {
		return fmt.Errorf("%d trailing bytes after payload", n)
	}
	return nil
}

// ---- append-style encoders ----

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendVector(dst []byte, x stream.Vector) ([]byte, error) {
	if len(x) > MaxVectorNNZ {
		return dst, fmt.Errorf("wire: vector has %d features, limit %d", len(x), MaxVectorNNZ)
	}
	dst = appendUvarint(dst, uint64(len(x)))
	for _, f := range x {
		if math.IsNaN(f.Value) || math.IsInf(f.Value, 0) {
			return dst, fmt.Errorf("wire: feature %d has non-finite value", f.Index)
		}
		dst = appendUvarint(dst, uint64(f.Index))
		dst = appendF64(dst, f.Value)
	}
	return dst, nil
}

// AppendUpdateRequest encodes a training batch. Labels must be ±1 and
// values finite — the encoder enforces the same contract the decoder does,
// so a conforming client can never elicit a StatusBadRequest.
func AppendUpdateRequest(dst []byte, batch []stream.Example) ([]byte, error) {
	if len(batch) == 0 {
		return dst, fmt.Errorf("wire: empty update batch")
	}
	if len(batch) > MaxBatchExamples {
		return dst, fmt.Errorf("wire: batch has %d examples, limit %d", len(batch), MaxBatchExamples)
	}
	dst = appendUvarint(dst, uint64(len(batch)))
	for i := range batch {
		switch batch[i].Y {
		case 1:
			dst = append(dst, 0x01)
		case -1:
			dst = append(dst, 0xFF)
		default:
			return dst, fmt.Errorf("wire: example %d: label must be +1 or -1, got %d", i, batch[i].Y)
		}
		var err error
		if dst, err = appendVector(dst, batch[i].X); err != nil {
			return dst, fmt.Errorf("wire: example %d: %w", i, err)
		}
	}
	return dst, nil
}

// DecodeUpdateRequest decodes a training batch. The returned examples and
// their feature backing array are freshly allocated (sharded backends
// retain batches asynchronously, so they must not alias a pooled buffer);
// nnzScratch is transient per-example bookkeeping the caller may pool, and
// the possibly-grown scratch is returned for reuse.
func DecodeUpdateRequest(payload []byte, nnzScratch []int) ([]stream.Example, []int, error) {
	rd := &reader{b: payload}
	n, err := rd.count(MaxBatchExamples)
	if err != nil {
		return nil, nnzScratch, fmt.Errorf("batch count: %w", err)
	}
	if n == 0 {
		return nil, nnzScratch, fmt.Errorf("no examples")
	}
	batch := make([]stream.Example, 0, upfrontCap(n))
	nnz := nnzScratch[:0]
	// Features decode into one flat backing array, subsliced per example
	// afterwards: one allocation per frame instead of one per example. The
	// capacity bound is exact-by-construction — every encoded feature costs
	// at least 9 payload bytes, and those bytes have already arrived.
	feats := make([]stream.Feature, 0, rd.remaining()/9)
	for i := 0; i < n; i++ {
		lb, err := rd.u8()
		if err != nil {
			return nil, nnz, fmt.Errorf("example %d: %w", i, err)
		}
		var y int
		switch lb {
		case 0x01:
			y = 1
		case 0xFF:
			y = -1
		default:
			return nil, nnz, fmt.Errorf("example %d: label must be +1 or -1, got byte %#x", i, lb)
		}
		m, err := rd.count(MaxVectorNNZ)
		if err != nil {
			return nil, nnz, fmt.Errorf("example %d: nnz: %w", i, err)
		}
		// Per-feature parsing is the hot loop of the hot endpoint; it runs
		// open-coded on a local cursor (single-byte uvarint fast path, one
		// bounds check per float) instead of through the reader helpers.
		// The contract is unchanged: indices fit uint32, values are finite.
		b, off := rd.b, rd.off
		for j := 0; j < m; j++ {
			var idx uint64
			if off < len(b) && b[off] < 0x80 {
				idx = uint64(b[off])
				off++
			} else {
				v, k := binary.Uvarint(b[off:])
				if k <= 0 {
					return nil, nnz, fmt.Errorf("example %d feature %d: bad uvarint at offset %d", i, j, off)
				}
				if v > math.MaxUint32 {
					return nil, nnz, fmt.Errorf("example %d feature %d: feature index %d overflows uint32", i, j, v)
				}
				idx = v
				off += k
			}
			if len(b)-off < 8 {
				return nil, nnz, fmt.Errorf("example %d feature %d: truncated float", i, j)
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			off += 8
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nnz, fmt.Errorf("example %d feature %d: non-finite value on the wire (%g)", i, j, v)
			}
			feats = append(feats, stream.Feature{Index: uint32(idx), Value: v})
		}
		rd.off = off
		batch = append(batch, stream.Example{Y: y})
		nnz = append(nnz, m)
	}
	if err := rd.done(); err != nil {
		return nil, nnz, err
	}
	off := 0
	for i := range batch {
		batch[i].X = stream.Vector(feats[off : off+nnz[i] : off+nnz[i]])
		off += nnz[i]
	}
	return batch, nnz, nil
}

// AppendUpdateResponse encodes an update result (applied count, step
// counter after the batch).
func AppendUpdateResponse(dst []byte, applied int, steps int64) []byte {
	dst = appendUvarint(dst, uint64(applied))
	return appendUvarint(dst, uint64(steps))
}

// DecodeUpdateResponse decodes an update result.
func DecodeUpdateResponse(payload []byte) (applied int, steps int64, err error) {
	rd := &reader{b: payload}
	a, err := rd.count(MaxBatchExamples)
	if err != nil {
		return 0, 0, fmt.Errorf("applied: %w", err)
	}
	s, err := rd.uvarint()
	if err != nil {
		return 0, 0, fmt.Errorf("steps: %w", err)
	}
	if s > math.MaxInt64 {
		return 0, 0, fmt.Errorf("steps %d overflows int64", s)
	}
	if err := rd.done(); err != nil {
		return 0, 0, err
	}
	return a, int64(s), nil
}

// AppendPredictRequest encodes the feature vector to score.
func AppendPredictRequest(dst []byte, x stream.Vector) ([]byte, error) {
	return appendVector(dst, x)
}

// DecodePredictRequest decodes a predict vector into scratch's capacity
// (predict is synchronous — the backend does not retain the vector, so the
// caller may pool it).
func DecodePredictRequest(payload []byte, scratch stream.Vector) (stream.Vector, error) {
	rd := &reader{b: payload}
	n, err := rd.count(MaxVectorNNZ)
	if err != nil {
		return scratch[:0], fmt.Errorf("nnz: %w", err)
	}
	x := scratch[:0]
	if cap(x) < upfrontCap(n) {
		x = make(stream.Vector, 0, upfrontCap(n))
	}
	for j := 0; j < n; j++ {
		idx, err := rd.index()
		if err != nil {
			return x[:0], fmt.Errorf("feature %d: %w", j, err)
		}
		v, err := rd.f64()
		if err != nil {
			return x[:0], fmt.Errorf("feature %d: %w", j, err)
		}
		x = append(x, stream.Feature{Index: idx, Value: v})
	}
	if err := rd.done(); err != nil {
		return x[:0], err
	}
	return x, nil
}

// AppendPredictResponse encodes a margin and its sign label.
func AppendPredictResponse(dst []byte, margin float64, label int) []byte {
	dst = appendF64(dst, margin)
	if label > 0 {
		return append(dst, 0x01)
	}
	return append(dst, 0xFF)
}

// DecodePredictResponse decodes a predict result.
func DecodePredictResponse(payload []byte) (margin float64, label int, err error) {
	rd := &reader{b: payload}
	if margin, err = rd.f64(); err != nil {
		return 0, 0, fmt.Errorf("margin: %w", err)
	}
	lb, err := rd.u8()
	if err != nil {
		return 0, 0, fmt.Errorf("label: %w", err)
	}
	switch lb {
	case 0x01:
		label = 1
	case 0xFF:
		label = -1
	default:
		return 0, 0, fmt.Errorf("label byte %#x", lb)
	}
	if err := rd.done(); err != nil {
		return 0, 0, err
	}
	return margin, label, nil
}

// AppendEstimateRequest encodes a batch of feature indices.
func AppendEstimateRequest(dst []byte, indices []uint32) ([]byte, error) {
	if len(indices) == 0 {
		return dst, fmt.Errorf("wire: no indices")
	}
	if len(indices) > MaxEstimateIndices {
		return dst, fmt.Errorf("wire: %d indices, limit %d", len(indices), MaxEstimateIndices)
	}
	dst = appendUvarint(dst, uint64(len(indices)))
	for _, i := range indices {
		dst = appendUvarint(dst, uint64(i))
	}
	return dst, nil
}

// DecodeEstimateRequest decodes an index batch into scratch's capacity
// (estimate is synchronous; the caller may pool the slice).
func DecodeEstimateRequest(payload []byte, scratch []uint32) ([]uint32, error) {
	rd := &reader{b: payload}
	n, err := rd.count(MaxEstimateIndices)
	if err != nil {
		return scratch[:0], fmt.Errorf("index count: %w", err)
	}
	if n == 0 {
		return scratch[:0], fmt.Errorf("no indices")
	}
	out := scratch[:0]
	if cap(out) < upfrontCap(n) {
		out = make([]uint32, 0, upfrontCap(n))
	}
	for j := 0; j < n; j++ {
		idx, err := rd.index()
		if err != nil {
			return out[:0], fmt.Errorf("index %d: %w", j, err)
		}
		out = append(out, idx)
	}
	if err := rd.done(); err != nil {
		return out[:0], err
	}
	return out, nil
}

// AppendEstimateResponse encodes weight estimates in request order.
func AppendEstimateResponse(dst []byte, weights []float64) []byte {
	dst = appendUvarint(dst, uint64(len(weights)))
	for _, w := range weights {
		dst = appendF64(dst, w)
	}
	return dst
}

// DecodeEstimateResponse decodes weight estimates into scratch's capacity.
func DecodeEstimateResponse(payload []byte, scratch []float64) ([]float64, error) {
	rd := &reader{b: payload}
	n, err := rd.count(MaxEstimateIndices)
	if err != nil {
		return scratch[:0], fmt.Errorf("weight count: %w", err)
	}
	out := scratch[:0]
	if cap(out) < upfrontCap(n) {
		out = make([]float64, 0, upfrontCap(n))
	}
	for j := 0; j < n; j++ {
		w, err := rd.f64()
		if err != nil {
			return out[:0], fmt.Errorf("weight %d: %w", j, err)
		}
		out = append(out, w)
	}
	if err := rd.done(); err != nil {
		return out[:0], err
	}
	return out, nil
}

// AppendErrorResponse encodes an error message, truncated to
// MaxErrorBytes.
func AppendErrorResponse(dst []byte, msg string) []byte {
	if len(msg) > MaxErrorBytes {
		msg = msg[:MaxErrorBytes]
	}
	return append(dst, msg...)
}

// DecodeErrorResponse decodes an error-response message.
func DecodeErrorResponse(payload []byte) (string, error) {
	if len(payload) > MaxErrorBytes {
		return "", fmt.Errorf("error message %d bytes exceeds %d", len(payload), MaxErrorBytes)
	}
	return string(payload), nil
}
