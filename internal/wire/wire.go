// Package wire is the binary hot protocol ("wmwire") for the serving
// plane's high-rate endpoints: update, predict, and estimate. The HTTP/JSON
// API (SERVING.md) stays the compatibility surface; this package exists
// because the JSON path tops out more than an order of magnitude below the
// bare learner (BENCH_serve.json vs BENCH_throughput.json) — the paper's
// premise is that the sketch is cheap enough to train inline with the
// stream, so the protocol must not be the bottleneck.
//
// The format reuses the decode discipline proven on the gossip wire
// (internal/cluster/wire.go): length-prefixed frames, a CRC32 over every
// frame, bounded counts on every decoded length, chunked allocation so a
// tiny hostile frame cannot demand gigabytes up front, and central
// rejection of non-finite floats before they can reach model state. See
// SERVING.md "Binary protocol" for the layout diagram and versioning rules.
//
// # Connection layout
//
// A connection opens with an 8-byte client preamble (magic "WMBP" +
// version, both little-endian uint32); the server answers with the same 8
// bytes, and frames flow after that. Mismatched magic or version fails the
// handshake before any frame is parsed — version negotiation is
// fail-closed, never silent.
//
// # Frame layout
//
// Every frame, request or response, is
//
//	kind    byte    request: op code; response: status code
//	flags   byte    must be zero in version 1
//	tag     uint32  request id, echoed verbatim in the response
//	length  uint32  payload bytes (bounded by MaxPayloadBytes)
//	payload length bytes, kind-specific (codec.go)
//	crc32   uint32  IEEE, over header AND payload
//
// The CRC covers the header too (unlike the gossip wire, which covers the
// payload only): a flipped bit in the length field would desynchronize the
// whole connection, so header integrity matters as much as payload
// integrity here.
//
// # Tags and pipelining
//
// Clients may keep many request frames in flight on one connection.
// Responses carry the request's tag and MAY complete out of order; a
// client matches responses to requests by tag alone, never by arrival
// order. Tag values are entirely client-chosen; the server never
// interprets them.
//
// # Error model
//
// Two failure tiers, mirroring how HTTP splits transport from application
// errors:
//
//   - Frame-level violations — bad handshake, unknown op, nonzero flags,
//     oversized length, CRC mismatch, truncated frame — are connection
//     fatal. The peer is desynchronized or hostile; the connection closes.
//   - Payload-level violations — bad label, non-finite value, empty batch,
//     oversized count, trailing bytes — map to a StatusBadRequest response
//     (the JSON path's 400) and the connection continues.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Handshake constants.
const (
	// Magic is "WMBP" (Weight-Median Binary Protocol), little-endian.
	Magic uint32 = 0x50424d57
	// Version is the protocol version. Receivers reject any other value:
	// format evolution bumps the version and ships a new decoder, it never
	// reinterprets existing fields.
	Version uint32 = 1
	// HandshakeSize is the preamble each side sends: magic + version.
	HandshakeSize = 8
)

// Request op codes (the frame kind byte on the request direction).
const (
	OpUpdate   = byte(1) // train on a batch of examples
	OpPredict  = byte(2) // score one feature vector
	OpEstimate = byte(3) // estimate weights for a batch of indices
	OpPing     = byte(4) // empty round-trip (handshake probe, liveness)
)

// Response status codes (the frame kind byte on the response direction).
const (
	StatusOK         = byte(0) // payload is the op-specific result
	StatusBadRequest = byte(1) // payload is an error message (client fault)
	StatusError      = byte(2) // payload is an error message (server fault)
)

// Sizing bounds. Every decoded count is validated against one of these
// before it sizes an allocation or a slice — the decode-bounds contract
// wmlint enforces mechanically.
const (
	// headerSize is kind + flags + tag + length.
	headerSize = 1 + 1 + 4 + 4
	// MaxPayloadBytes bounds one frame's declared payload, matching the
	// JSON path's request cap (server.maxRequestBytes).
	MaxPayloadBytes = 8 << 20
	// MaxBatchExamples bounds one update frame's example count.
	MaxBatchExamples = 1 << 16
	// MaxVectorNNZ bounds one vector's feature count, matching the libsvm
	// parser's stream.MaxLibSVMFeatures.
	MaxVectorNNZ = 1 << 20
	// MaxEstimateIndices bounds one estimate frame's index count, matching
	// the JSON path's maxEstimateBatch.
	MaxEstimateIndices = 1 << 16
	// MaxErrorBytes bounds an error-response message.
	MaxErrorBytes = 1 << 10
	// maxUpfrontAlloc caps capacity allocated from a wire-supplied count
	// alone; larger (still-bounded) buffers grow by append as payload bytes
	// actually arrive, the same hostile-length discipline as the gossip
	// wire's readPayload.
	maxUpfrontAlloc = 1 << 16
)

// upfrontCap bounds the capacity allocated before payload bytes arrive.
func upfrontCap(n int) int {
	if n > maxUpfrontAlloc {
		return maxUpfrontAlloc
	}
	return n
}

// validOp reports whether b is a known request op.
func validOp(b byte) bool { return b >= OpUpdate && b <= OpPing }

// validStatus reports whether b is a known response status.
func validStatus(b byte) bool { return b <= StatusError }

// OpName returns the human-readable name of an op code, used as the metric
// and span label for the binary dispatch table.
func OpName(op byte) string {
	switch op {
	case OpUpdate:
		return "update"
	case OpPredict:
		return "predict"
	case OpEstimate:
		return "estimate"
	case OpPing:
		return "ping"
	}
	return fmt.Sprintf("op%d", op)
}

// WriteHandshake sends the 8-byte preamble.
func WriteHandshake(w io.Writer) error {
	var b [HandshakeSize]byte
	binary.LittleEndian.PutUint32(b[0:], Magic)
	binary.LittleEndian.PutUint32(b[4:], Version)
	_, err := w.Write(b[:])
	return err
}

// ReadHandshake reads and validates the peer's preamble.
func ReadHandshake(r io.Reader) error {
	var b [HandshakeSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("wire: truncated handshake: %w", err)
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != Magic {
		return fmt.Errorf("wire: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != Version {
		return fmt.Errorf("wire: unsupported protocol version %d", v)
	}
	return nil
}

// RequestFrame is one decoded request. Payload aliases the buffer passed
// to ReadRequestFrame; it is valid until that buffer is reused.
type RequestFrame struct {
	Op      byte
	Tag     uint32
	Payload []byte
}

// ResponseFrame is one decoded response. Payload aliases the buffer passed
// to ReadResponseFrame; it is valid until that buffer is reused.
type ResponseFrame struct {
	Status  byte
	Tag     uint32
	Payload []byte
}

// WriteFrame encodes one frame — kind is an op on the request direction, a
// status on the response direction — and returns the bytes written. The
// payload must not exceed MaxPayloadBytes.
func WriteFrame(w io.Writer, kind byte, tag uint32, payload []byte) (int, error) {
	if len(payload) > MaxPayloadBytes {
		return 0, fmt.Errorf("wire: payload %d exceeds %d bytes", len(payload), MaxPayloadBytes)
	}
	var hdr [headerSize]byte
	hdr[0] = kind
	hdr[1] = 0 // flags, reserved
	binary.LittleEndian.PutUint32(hdr[2:], tag)
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	n := 0
	for _, chunk := range [][]byte{hdr[:], payload} {
		m, err := w.Write(chunk)
		n += m
		if err != nil {
			return n, err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	m, err := w.Write(trailer[:])
	return n + m, err
}

// FrameWireSize is the encoded size of a frame carrying payloadLen bytes.
func FrameWireSize(payloadLen int) int { return headerSize + payloadLen + 4 }

// payloadLength extracts and bounds the header's declared payload length;
// validating at the extraction site is the decode-bounds idiom, so callers
// only ever see an already-capped count.
func payloadLength(hdr []byte) (int, error) {
	n := int(binary.LittleEndian.Uint32(hdr[6:]))
	if n > MaxPayloadBytes {
		return 0, fmt.Errorf("wire: declared payload %d exceeds %d bytes", n, MaxPayloadBytes)
	}
	return n, nil
}

// readFrame reads one frame into buf (reusing its capacity) and returns
// the kind, tag, payload, and the possibly-grown buffer. Errors here are
// connection fatal by contract: the stream can no longer be trusted to be
// frame aligned.
func readFrame(r io.Reader, buf []byte, valid func(byte) bool, dir string) (kind byte, tag uint32, payload, out []byte, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, buf, err // io.EOF between frames is a clean close
	}
	kind = hdr[0]
	if !valid(kind) {
		return 0, 0, nil, buf, fmt.Errorf("wire: unknown %s kind %d", dir, kind)
	}
	if hdr[1] != 0 {
		return 0, 0, nil, buf, fmt.Errorf("wire: nonzero flags %#x (version 1 reserves them)", hdr[1])
	}
	tag = binary.LittleEndian.Uint32(hdr[2:])
	n, err := payloadLength(hdr[:])
	if err != nil {
		return 0, 0, nil, buf, err
	}
	// Grow by bounded chunks as bytes actually arrive: a hostile length
	// cannot demand more than maxUpfrontAlloc ahead of real payload data.
	if cap(buf) < upfrontCap(n) {
		buf = make([]byte, 0, upfrontCap(n))
	}
	payload = buf[:0]
	for len(payload) < n {
		chunk := n - len(payload)
		if chunk > maxUpfrontAlloc {
			chunk = maxUpfrontAlloc
		}
		start := len(payload)
		payload = append(payload, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return 0, 0, nil, payload[:0], fmt.Errorf("wire: truncated payload: %w", err)
		}
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return 0, 0, nil, payload[:0], fmt.Errorf("wire: truncated checksum: %w", err)
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if got := binary.LittleEndian.Uint32(trailer[:]); got != crc {
		return 0, 0, nil, payload[:0], fmt.Errorf("wire: checksum mismatch (computed %#x, trailer %#x)", crc, got)
	}
	return kind, tag, payload, payload, nil
}

// ReadRequestFrame reads one request frame, reusing buf's capacity for the
// payload. It returns the frame and the (possibly grown) buffer for the
// caller's pool. An io.EOF before the first header byte is a clean
// connection close and is returned as io.EOF unwrapped.
func ReadRequestFrame(r io.Reader, buf []byte) (RequestFrame, []byte, error) {
	op, tag, payload, out, err := readFrame(r, buf, validOp, "op")
	if err != nil {
		return RequestFrame{}, out, err
	}
	return RequestFrame{Op: op, Tag: tag, Payload: payload}, out, nil
}

// ReadResponseFrame reads one response frame, reusing buf's capacity for
// the payload.
func ReadResponseFrame(r io.Reader, buf []byte) (ResponseFrame, []byte, error) {
	status, tag, payload, out, err := readFrame(r, buf, validStatus, "status")
	if err != nil {
		return ResponseFrame{}, out, err
	}
	return ResponseFrame{Status: status, Tag: tag, Payload: payload}, out, nil
}
