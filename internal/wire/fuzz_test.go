package wire

import (
	"bytes"
	"io"
	"testing"

	"wmsketch/internal/stream"
)

// Frame-reader fuzzers, wired into make fuzz-smoke next to the gossip and
// checkpoint fuzzers. The property under test is the frame contract:
// arbitrary bytes must never panic, never allocate unboundedly ahead of
// real payload data, and every accepted frame must re-encode to the exact
// bytes that were read (CRC included). The payload codecs ride along — any
// frame the reader accepts is pushed through its op's decoder too.

// boundedReader hands out at most n bytes, so a hostile length prefix
// cannot be satisfied by the reader and must fail via the chunked-growth
// path rather than a giant make().
func fuzzSeedFrames(f *testing.F) {
	seed := func(kind byte, tag uint32, payload []byte) {
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, kind, tag, payload); err == nil {
			f.Add(buf.Bytes())
		}
	}
	upd, _ := AppendUpdateRequest(nil, []stream.Example{
		{Y: 1, X: stream.Vector{{Index: 5, Value: 1.5}}},
	})
	seed(OpUpdate, 1, upd)
	pred, _ := AppendPredictRequest(nil, stream.Vector{{Index: 2, Value: -0.5}})
	seed(OpPredict, 2, pred)
	est, _ := AppendEstimateRequest(nil, []uint32{1, 2, 3})
	seed(OpEstimate, 3, est)
	seed(OpPing, 4, nil)
	seed(StatusOK, 1, AppendUpdateResponse(nil, 1, 7))
	seed(StatusOK, 2, AppendPredictResponse(nil, 0.25, 1))
	seed(StatusOK, 3, AppendEstimateResponse(nil, []float64{0.5}))
	seed(StatusBadRequest, 5, AppendErrorResponse(nil, "no"))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
}

func FuzzReadRequestFrame(f *testing.F) {
	fuzzSeedFrames(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		req, _, err := ReadRequestFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		// Accepted frames must be bit-exact under re-encoding: same op,
		// tag, and payload produce the same wire bytes including CRC.
		var out bytes.Buffer
		if _, werr := WriteFrame(&out, req.Op, req.Tag, req.Payload); werr != nil {
			t.Fatalf("accepted frame fails to re-encode: %v", werr)
		}
		wireLen := FrameWireSize(len(req.Payload))
		if !bytes.Equal(out.Bytes(), data[:wireLen]) {
			t.Fatalf("re-encode mismatch on accepted frame (%d bytes)", wireLen)
		}
		// Any accepted frame's payload goes through its op decoder; the
		// decoders must not panic and must reject trailing garbage
		// internally (their own done() contract).
		switch req.Op {
		case OpUpdate:
			_, _, _ = DecodeUpdateRequest(req.Payload, nil)
		case OpPredict:
			_, _ = DecodePredictRequest(req.Payload, nil)
		case OpEstimate:
			_, _ = DecodeEstimateRequest(req.Payload, nil)
		}
	})
}

func FuzzReadResponseFrame(f *testing.F) {
	fuzzSeedFrames(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, _, err := ReadResponseFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, werr := WriteFrame(&out, resp.Status, resp.Tag, resp.Payload); werr != nil {
			t.Fatalf("accepted frame fails to re-encode: %v", werr)
		}
		if !bytes.Equal(out.Bytes(), data[:FrameWireSize(len(resp.Payload))]) {
			t.Fatal("re-encode mismatch on accepted frame")
		}
		if resp.Status != StatusOK {
			_, _ = DecodeErrorResponse(resp.Payload)
			return
		}
		_, _, _ = DecodeUpdateResponse(resp.Payload)
		_, _, _ = DecodePredictResponse(resp.Payload)
		_, _ = DecodeEstimateResponse(resp.Payload, nil)
	})
}

// TestTruncatedFrameAllocation pins the bounded-allocation property the
// fuzzers rely on: a frame declaring MaxPayloadBytes but delivering almost
// nothing must fail after at most one maxUpfrontAlloc-sized chunk, not
// after allocating the full declared size.
func TestTruncatedFrameAllocation(t *testing.T) {
	var hdr bytes.Buffer
	big := make([]byte, MaxPayloadBytes) // only to build a valid header cheaply
	if _, err := WriteFrame(io.Discard, OpUpdate, 1, big); err != nil {
		t.Fatal(err)
	}
	hdr.WriteByte(OpUpdate)
	hdr.WriteByte(0)
	hdr.Write([]byte{1, 0, 0, 0})
	hdr.Write([]byte{0, 0, 128, 0}) // declared length 8 MiB
	hdr.Write(make([]byte, 100))    // 100 real payload bytes, then EOF

	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := ReadRequestFrame(bytes.NewReader(hdr.Bytes()), nil); err == nil {
			t.Fatal("truncated frame accepted")
		}
	})
	// One pooled-buffer make (≤ maxUpfrontAlloc) plus error plumbing; the
	// exact count is not the contract, the absence of an 8 MiB make is.
	if allocs > 10 {
		t.Fatalf("truncated oversize frame cost %.0f allocations", allocs)
	}
}
