package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"wmsketch/internal/stream"
)

func mustFrame(t *testing.T, kind byte, tag uint32, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteFrame(&buf, kind, tag, payload)
	if err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if n != buf.Len() || n != FrameWireSize(len(payload)) {
		t.Fatalf("WriteFrame reported %d bytes, wrote %d, FrameWireSize says %d",
			n, buf.Len(), FrameWireSize(len(payload)))
	}
	return buf.Bytes()
}

func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf); err != nil {
		t.Fatalf("WriteHandshake: %v", err)
	}
	if buf.Len() != HandshakeSize {
		t.Fatalf("handshake is %d bytes, want %d", buf.Len(), HandshakeSize)
	}
	if err := ReadHandshake(&buf); err != nil {
		t.Fatalf("ReadHandshake: %v", err)
	}
}

func TestHandshakeRejects(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		_ = WriteHandshake(&buf)
		return buf.Bytes()
	}
	cases := map[string][]byte{
		"truncated":   good()[:5],
		"bad magic":   append([]byte{'X', 'X', 'X', 'X'}, good()[4:]...),
		"bad version": append(good()[:4], 99, 0, 0, 0),
	}
	for name, raw := range cases {
		if err := ReadHandshake(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: handshake accepted", name)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{0x42},
		bytes.Repeat([]byte{0xAB}, 1000),
		bytes.Repeat([]byte{0xCD}, maxUpfrontAlloc+5000), // spans chunked growth
	}
	var buf []byte
	for i, p := range payloads {
		tag := uint32(1000 + i)
		raw := mustFrame(t, OpUpdate, tag, p)
		req, grown, err := ReadRequestFrame(bytes.NewReader(raw), buf)
		buf = grown
		if err != nil {
			t.Fatalf("payload %d: ReadRequestFrame: %v", i, err)
		}
		if req.Op != OpUpdate || req.Tag != tag || !bytes.Equal(req.Payload, p) {
			t.Fatalf("payload %d: round trip mismatch (op %d, tag %d, %d bytes)",
				i, req.Op, req.Tag, len(req.Payload))
		}
	}
	// Response direction shares the framing.
	raw := mustFrame(t, StatusBadRequest, 7, []byte("nope"))
	resp, _, err := ReadResponseFrame(bytes.NewReader(raw), nil)
	if err != nil {
		t.Fatalf("ReadResponseFrame: %v", err)
	}
	if resp.Status != StatusBadRequest || resp.Tag != 7 || string(resp.Payload) != "nope" {
		t.Fatalf("response round trip mismatch: %+v", resp)
	}
}

func TestFramePipelinedStream(t *testing.T) {
	// Several frames back to back on one reader, reusing one buffer.
	var stream bytes.Buffer
	for tag := uint32(1); tag <= 5; tag++ {
		frame := mustFrame(t, OpPing, tag, bytes.Repeat([]byte{byte(tag)}, int(tag)*10))
		stream.Write(frame)
	}
	var buf []byte
	for tag := uint32(1); tag <= 5; tag++ {
		req, grown, err := ReadRequestFrame(&stream, buf)
		buf = grown
		if err != nil {
			t.Fatalf("frame %d: %v", tag, err)
		}
		if req.Tag != tag || len(req.Payload) != int(tag)*10 {
			t.Fatalf("frame %d: got tag %d, %d bytes", tag, req.Tag, len(req.Payload))
		}
	}
	if _, _, err := ReadRequestFrame(&stream, buf); err != io.EOF {
		t.Fatalf("want clean io.EOF after last frame, got %v", err)
	}
}

func TestFrameRejects(t *testing.T) {
	base := mustFrame(t, OpPredict, 9, []byte("abcd"))
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"unknown op":     corrupt(func(b []byte) { b[0] = 200 }),
		"zero op":        corrupt(func(b []byte) { b[0] = 0 }),
		"nonzero flags":  corrupt(func(b []byte) { b[1] = 1 }),
		"payload bitrot": corrupt(func(b []byte) { b[headerSize] ^= 0x80 }),
		"header bitrot":  corrupt(func(b []byte) { b[2] ^= 0x01 }), // tag flip must fail the CRC
		"truncated":      base[:len(base)-2],
		"oversize length": corrupt(func(b []byte) {
			b[6], b[7], b[8], b[9] = 0xFF, 0xFF, 0xFF, 0xFF
		}),
	}
	for name, raw := range cases {
		if _, _, err := ReadRequestFrame(bytes.NewReader(raw), nil); err == nil {
			t.Errorf("%s: frame accepted", name)
		} else if errors.Is(err, io.EOF) && name != "truncated" {
			t.Errorf("%s: got bare EOF, want a descriptive error", name)
		}
	}
	// The response reader applies its own kind validation.
	badStatus := corrupt(func(b []byte) { b[0] = 50 })
	if _, _, err := ReadResponseFrame(bytes.NewReader(badStatus), nil); err == nil {
		t.Error("unknown status accepted")
	}
}

func TestWriteFrameRejectsOversizePayload(t *testing.T) {
	// Oversize must be rejected before any bytes hit the writer, so a
	// half-written frame can never desynchronize the connection.
	var buf bytes.Buffer
	big := make([]byte, MaxPayloadBytes+1)
	if _, err := WriteFrame(&buf, OpUpdate, 1, big); err == nil {
		t.Fatal("oversize payload accepted")
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes written before the size check", buf.Len())
	}
}

func testBatch() []stream.Example {
	return []stream.Example{
		{Y: 1, X: stream.Vector{{Index: 0, Value: 1.5}, {Index: 77, Value: -2.25}}},
		{Y: -1, X: stream.Vector{{Index: math.MaxUint32, Value: 1e-9}}},
		{Y: 1, X: nil}, // empty vector is legal, matching the JSON path
	}
}

func TestUpdateCodecRoundTrip(t *testing.T) {
	batch := testBatch()
	enc, err := AppendUpdateRequest(nil, batch)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, _, err := DecodeUpdateRequest(enc, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(batch) {
		t.Fatalf("decoded %d examples, want %d", len(dec), len(batch))
	}
	for i := range batch {
		if dec[i].Y != batch[i].Y || len(dec[i].X) != len(batch[i].X) {
			t.Fatalf("example %d mismatch: %+v vs %+v", i, dec[i], batch[i])
		}
		for j := range batch[i].X {
			if dec[i].X[j] != batch[i].X[j] {
				t.Fatalf("example %d feature %d: %+v vs %+v", i, j, dec[i].X[j], batch[i].X[j])
			}
		}
	}
	// The flat feature backing must be capped per example: an append to one
	// example's vector must not clobber the next example's features.
	if cap(dec[0].X) != len(dec[0].X) {
		t.Fatalf("example 0 vector cap %d leaks past its length %d", cap(dec[0].X), len(dec[0].X))
	}

	resp := AppendUpdateResponse(nil, len(batch), 12345)
	applied, steps, err := DecodeUpdateResponse(resp)
	if err != nil || applied != len(batch) || steps != 12345 {
		t.Fatalf("update response round trip: %d/%d/%v", applied, steps, err)
	}
}

func TestUpdateCodecRejects(t *testing.T) {
	if _, err := AppendUpdateRequest(nil, nil); err == nil {
		t.Error("empty batch encoded")
	}
	if _, err := AppendUpdateRequest(nil, []stream.Example{{Y: 2}}); err == nil {
		t.Error("label 2 encoded")
	}
	if _, err := AppendUpdateRequest(nil, []stream.Example{
		{Y: 1, X: stream.Vector{{Index: 0, Value: math.NaN()}}},
	}); err == nil {
		t.Error("NaN value encoded")
	}

	good, _ := AppendUpdateRequest(nil, testBatch())
	decodeFails := func(name string, payload []byte) {
		t.Helper()
		if _, _, err := DecodeUpdateRequest(payload, nil); err == nil {
			t.Errorf("%s: decoded", name)
		}
	}
	decodeFails("empty payload", nil)
	decodeFails("zero examples", appendUvarint(nil, 0))
	decodeFails("oversize count", appendUvarint(nil, MaxBatchExamples+1))
	decodeFails("truncated", good[:len(good)-3])
	decodeFails("trailing bytes", append(append([]byte(nil), good...), 0x00))
	decodeFails("bad label byte", func() []byte {
		p := appendUvarint(nil, 1)
		return append(p, 0x02)
	}())
	decodeFails("non-finite value", func() []byte {
		p := appendUvarint(nil, 1)
		p = append(p, 0x01)
		p = appendUvarint(p, 1)
		p = appendUvarint(p, 5)
		return appendF64(p, math.Inf(1))
	}())
	decodeFails("index overflow", func() []byte {
		p := appendUvarint(nil, 1)
		p = append(p, 0x01)
		p = appendUvarint(p, 1)
		p = appendUvarint(p, uint64(math.MaxUint32)+1)
		return appendF64(p, 1)
	}())
}

func TestPredictCodecRoundTrip(t *testing.T) {
	x := stream.Vector{{Index: 3, Value: 0.5}, {Index: 9, Value: -1}}
	enc, err := AppendPredictRequest(nil, x)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodePredictRequest(enc, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(x) || dec[0] != x[0] || dec[1] != x[1] {
		t.Fatalf("round trip mismatch: %+v", dec)
	}

	for _, margin := range []float64{0.75, -0.125, 0} {
		label := -1
		if margin > 0 {
			label = 1
		}
		resp := AppendPredictResponse(nil, margin, label)
		m, l, err := DecodePredictResponse(resp)
		if err != nil || m != margin || l != label {
			t.Fatalf("predict response round trip (%g): %g/%d/%v", margin, m, l, err)
		}
	}
	if _, _, err := DecodePredictResponse(append(AppendPredictResponse(nil, 1, 1), 0xEE)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestEstimateCodecRoundTrip(t *testing.T) {
	indices := []uint32{0, 42, math.MaxUint32}
	enc, err := AppendEstimateRequest(nil, indices)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeEstimateRequest(enc, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range indices {
		if dec[i] != indices[i] {
			t.Fatalf("index %d: %d != %d", i, dec[i], indices[i])
		}
	}
	if _, err := AppendEstimateRequest(nil, nil); err == nil {
		t.Error("empty index batch encoded")
	}
	if _, err := DecodeEstimateRequest(appendUvarint(nil, 0), nil); err == nil {
		t.Error("zero indices decoded")
	}

	weights := []float64{0.25, -3.5, 0}
	wdec, err := DecodeEstimateResponse(AppendEstimateResponse(nil, weights), nil)
	if err != nil {
		t.Fatalf("weights decode: %v", err)
	}
	for i := range weights {
		if wdec[i] != weights[i] {
			t.Fatalf("weight %d: %g != %g", i, wdec[i], weights[i])
		}
	}
}

func TestErrorCodec(t *testing.T) {
	msg, err := DecodeErrorResponse(AppendErrorResponse(nil, "bad label"))
	if err != nil || msg != "bad label" {
		t.Fatalf("round trip: %q/%v", msg, err)
	}
	long := strings.Repeat("x", MaxErrorBytes+100)
	truncated := AppendErrorResponse(nil, long)
	if len(truncated) != MaxErrorBytes {
		t.Fatalf("truncated to %d bytes, want %d", len(truncated), MaxErrorBytes)
	}
	if _, err := DecodeErrorResponse(make([]byte, MaxErrorBytes+1)); err == nil {
		t.Error("oversize error message decoded")
	}
}

func TestOpNames(t *testing.T) {
	for op, want := range map[byte]string{
		OpUpdate: "update", OpPredict: "predict", OpEstimate: "estimate", OpPing: "ping",
	} {
		if got := OpName(op); got != want {
			t.Errorf("OpName(%d) = %q, want %q", op, got, want)
		}
		if !validOp(op) {
			t.Errorf("validOp(%d) = false", op)
		}
	}
	if validOp(0) || validOp(OpPing+1) {
		t.Error("out-of-range op accepted")
	}
	if !validStatus(StatusOK) || !validStatus(StatusError) || validStatus(StatusError+1) {
		t.Error("status validation wrong")
	}
}
