// Streaming pointwise mutual information (Section 8.3 of the paper):
// detect strongly-associated token pairs in a text stream without storing
// per-bigram counts.
//
// The estimation is framed as binary classification: sliding-window
// bigrams are positive examples, pairs synthesized from a unigram
// reservoir are negatives, and the logistic weight of each (hashed) pair
// converges to its PMI shifted by log(#negatives). An AWM-Sketch keeps the
// whole model in ~0.3MB where exact bigram counting would need hundreds.
//
//	go run ./examples/pmi
package main

import (
	"fmt"
	"math"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/hashing"
	"wmsketch/internal/linear"
	"wmsketch/internal/metrics"
	"wmsketch/internal/reservoir"
	"wmsketch/internal/stream"
)

const negatives = 5

func main() {
	gen := datagen.NewCorpus(datagen.DefaultCorpusConfig(13))

	sketch := core.NewAWMSketch(core.Config{
		Width:    1 << 16,
		Depth:    1,
		HeapSize: 1024,
		Lambda:   1e-5,
		Seed:     17,
		Schedule: linear.Constant{Eta0: 0.2},
	})
	res := reservoir.NewUniform(4000, 19)
	window := datagen.NewBigramWindow(5)

	// Exact counts for validation only.
	exact := metrics.NewPMITracker()
	pairOf := map[uint32]datagen.TokenPair{}

	const tokens = 300_000
	for i := 0; i < tokens; i++ {
		tok := gen.NextToken()
		exact.ObserveUnigram(tok)
		window.Push(tok, func(u, v uint32) {
			exact.ObserveBigram(u, v)
			f := hashing.HashPair(u, v)
			pairOf[f] = datagen.TokenPair{U: u, V: v}
			sketch.Update(stream.OneHot(f), 1)
			for n := 0; n < negatives; n++ {
				nu, _ := res.Sample()
				nv, _ := res.Sample()
				nf := hashing.HashPair(nu, nv)
				pairOf[nf] = datagen.TokenPair{U: nu, V: nv}
				sketch.Update(stream.OneHot(nf), -1)
			}
		})
		res.Observe(tok)
	}
	fmt.Printf("processed %d tokens, %d distinct bigrams, model footprint %d bytes\n",
		tokens, exact.DistinctBigrams(), sketch.MemoryBytes())
	fmt.Printf("(exact 32-bit counting of these bigrams would need %.1f MB)\n\n",
		float64(exact.DistinctBigrams())*8/1e6)

	// Report the pairs with the most positive weights — the highest
	// estimated PMI — against PMI computed from exact counts.
	fmt.Println("top associated pairs (estimated vs exact PMI):")
	fmt.Println("  pair              est-PMI  exact-PMI  planted")
	type cand struct {
		pair datagen.TokenPair
		w    float64
	}
	var cands []cand
	for _, w := range sketch.TopK(1024) {
		if w.Weight > 0 {
			if p, ok := pairOf[w.Index]; ok {
				cands = append(cands, cand{pair: p, w: w.Weight})
			}
		}
	}
	shown := 0
	for _, c := range cands {
		if shown == 10 {
			break
		}
		exactPMI := exact.PMI(c.pair.U, c.pair.V)
		if math.IsNaN(exactPMI) {
			continue
		}
		fmt.Printf("  (%6d,%6d)  %7.3f  %9.3f  %v\n",
			c.pair.U, c.pair.V, c.w+math.Log(negatives), exactPMI,
			gen.IsPlanted(c.pair.U, c.pair.V))
		shown++
	}
}
