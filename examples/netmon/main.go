// Network monitoring / relative deltoid detection (Section 8.2 of the
// paper): find IP addresses whose traffic volume differs by a large factor
// between two concurrently-observed packet streams.
//
// Each packet becomes a 1-sparse training example labeled by which stream
// it appeared on; addresses with large positive classifier weights are
// outbound-heavy deltoids. A 32KB AWM-Sketch recovers the planted deltoids
// with recall far above the paired Count-Min approach at equal memory.
//
//	go run ./examples/netmon
package main

import (
	"fmt"
	"math"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/metrics"
	"wmsketch/internal/stream"
)

func main() {
	gen := datagen.NewPacketTrace(datagen.DefaultPacketTraceConfig(11))

	sketch := core.NewAWMSketch(core.Config{
		Width:    4096,
		Depth:    1,
		HeapSize: 2048,
		Lambda:   1e-6,
		Seed:     5,
	})

	// Exact counts kept for validation only.
	outCount := map[uint32]float64{}
	inCount := map[uint32]float64{}

	const packets = 500_000
	for i := 0; i < packets; i++ {
		p := gen.Next()
		y := -1
		if p.Outbound {
			y = 1
			outCount[p.IP]++
		} else {
			inCount[p.IP]++
		}
		sketch.Update(stream.OneHot(p.IP), y)
	}
	fmt.Printf("processed %d packets over %d distinct addresses in %d bytes\n\n",
		packets, len(outCount)+len(inCount), sketch.MemoryBytes())

	// Addresses with the largest positive weights are outbound-heavy.
	fmt.Println("top outbound-heavy addresses (weight vs exact out/in ratio):")
	fmt.Println("  address    weight    out     in    ratio  planted")
	shown := 0
	planted := gen.OutboundDeltoids()
	for _, w := range sketch.TopK(2048) {
		if w.Weight <= 0 || shown == 12 {
			if shown == 12 {
				break
			}
			continue
		}
		o, in := outCount[w.Index], inCount[w.Index]
		fmt.Printf("  %8d  %+7.3f  %5.0f  %5.0f  %6.1f  %v\n",
			w.Index, w.Weight, o, in, o/math.Max(in, 0.5), planted[w.Index])
		shown++
	}

	// Recall of planted deltoids among sufficiently-observed addresses.
	relevant := map[uint32]bool{}
	for ip := range planted {
		if outCount[ip]+inCount[ip] >= 20 {
			relevant[ip] = true
		}
	}
	var retrieved []uint32
	for _, w := range sketch.TopK(2048) {
		if w.Weight > 0 {
			retrieved = append(retrieved, w.Index)
		}
	}
	fmt.Printf("\nrecall of observable planted deltoids: %.3f (%d planted)\n",
		metrics.Recall(retrieved, relevant), len(relevant))
}
