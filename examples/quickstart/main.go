// Quickstart: learn a compressed linear classifier over a synthetic stream
// and recover its most heavily-weighted features.
//
// This demonstrates the core loop of the Weight-Median Sketch paper: a
// fixed 2KB memory region learns a classifier over a high-dimensional
// stream while supporting top-K weight queries at any time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/metrics"
)

func main() {
	// A synthetic stream with 47,000 features, Zipf-distributed
	// frequencies, and 200 planted discriminative features.
	gen := datagen.RCV1Like(1)

	// The paper's best 2KB configuration (Table 2): a 128-entry active set
	// plus a depth-1 sketch of 256 buckets — 2048 bytes total under the
	// 4-bytes-per-value cost model.
	sketch := core.NewAWMSketch(core.Config{
		Width:    256,
		Depth:    1,
		HeapSize: 128,
		Lambda:   1e-6,
		Seed:     42,
	})
	fmt.Printf("classifier footprint: %d bytes\n\n", sketch.MemoryBytes())

	// Online learning: predict, record the outcome, update.
	var errRate metrics.ErrorRate
	for i := 0; i < 100_000; i++ {
		ex := gen.Next()
		errRate.Record(sketch.Predict(ex.X), ex.Y)
		sketch.Update(ex.X, ex.Y)
	}
	fmt.Printf("online error rate after %d examples: %.4f\n\n",
		errRate.Count(), errRate.Rate())

	// Recover the most heavily-weighted features. With the AWM-Sketch these
	// live exactly in the active set; compare them against the generator's
	// planted ground truth.
	truth := gen.TrueWeights()
	fmt.Println("top-10 recovered features:")
	fmt.Println("  rank  feature   weight    planted-weight")
	for i, w := range sketch.TopK(10) {
		fmt.Printf("  %4d  %7d  %+8.4f  %+8.4f\n", i+1, w.Index, w.Weight, truth[w.Index])
	}

	// Point queries work for any feature, including ones outside the
	// active set (answered from the sketch).
	fmt.Printf("\npoint query for feature 7: %+.4f\n", sketch.Estimate(7))
}
