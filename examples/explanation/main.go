// Streaming data explanation (Section 8.1 of the paper): identify the
// attributes most indicative of outlier records in a stream, using a
// memory-budgeted classifier instead of a heavy-hitters summary.
//
// The stream mimics itemized spending records: each row has six
// categorical attributes and an outlier flag (top-20% by amount). Rows are
// encoded as 1-sparse examples (one per attribute) and a 32KB AWM-Sketch is
// trained to discriminate outliers from inliers. Features with the largest
// positive weights are the explanation candidates; their weights correlate
// strongly with the exact relative risk.
//
//	go run ./examples/explanation
package main

import (
	"fmt"
	"math"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/linear"
	"wmsketch/internal/metrics"
)

func main() {
	gen := datagen.NewExplanation(datagen.DefaultExplanationConfig(7))

	// 32KB AWM-Sketch (Table 2 configuration: 2048-entry active set plus a
	// 4096-bucket depth-1 sketch).
	sketch := core.NewAWMSketch(core.Config{
		Width:    4096,
		Depth:    1,
		HeapSize: 2048,
		Lambda:   1e-6,
		Seed:     3,
		Schedule: linear.Constant{Eta0: 0.1},
	})

	// Exact relative-risk tracking for validation only — a real deployment
	// would keep just the 32KB sketch.
	risk := metrics.NewRiskTracker()

	const rows = 100_000
	for i := 0; i < rows; i++ {
		row := gen.Next()
		for _, a := range row.Attrs {
			risk.Observe(a, row.Y)
		}
		for _, ex := range row.Examples() {
			sketch.Update(ex.X, ex.Y)
		}
	}
	fmt.Printf("processed %d rows (%d attribute observations) in %d bytes\n\n",
		rows, 6*rows, sketch.MemoryBytes())

	// The top positively-weighted attributes explain the outlier class.
	fmt.Println("top outlier-explaining attributes (weight vs exact relative risk):")
	fmt.Println("  field:value      weight   rel-risk  planted-high-risk")
	printed := 0
	for _, w := range sketch.TopK(2048) {
		if w.Weight <= 0 || printed == 12 {
			if printed == 12 {
				break
			}
			continue
		}
		r := risk.RelativeRisk(w.Index)
		if math.IsNaN(r) {
			continue
		}
		fmt.Printf("  %5d:%-6d  %+8.3f  %8.2f  %v\n",
			w.Index/2000, w.Index%2000, w.Weight, r,
			gen.HighRiskFeatures()[w.Index])
		printed++
	}

	// Overall weight-risk agreement across the retrieved set (the paper
	// reports Pearson 0.91 for the AWM-Sketch on the FEC data).
	var ws, rs []float64
	for _, w := range sketch.TopK(2048) {
		r := risk.RelativeRisk(w.Index)
		if math.IsNaN(r) || math.IsInf(r, 0) {
			continue
		}
		ws = append(ws, w.Weight)
		rs = append(rs, r)
	}
	fmt.Printf("\nPearson(weight, relative risk) over top-%d: %.3f\n",
		len(ws), metrics.Pearson(ws, rs))
}
