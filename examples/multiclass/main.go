// Multiclass classification (Section 9's extension): one AWM-Sketch per
// class in a one-vs-all arrangement, with per-class recovery of the most
// indicative features.
//
// The stream is a 4-topic document simulation: each topic draws from its
// own block of vocabulary plus a shared background. The sketched ensemble
// classifies unseen documents and, unlike a hashed multiclass model, can
// report which features define each class.
//
//	go run ./examples/multiclass
package main

import (
	"fmt"
	"math/rand"

	"wmsketch/internal/core"
	"wmsketch/internal/stream"
)

const (
	numClasses = 4
	blockSize  = 100
	background = 900 // shared background vocabulary block
)

// document draws a synthetic document for class c: mostly topical tokens
// plus shared background noise.
func document(rng *rand.Rand, c int) stream.Vector {
	x := make(stream.Vector, 0, 8)
	seen := map[uint32]bool{}
	add := func(i uint32) {
		if !seen[i] {
			seen[i] = true
			x = append(x, stream.Feature{Index: i, Value: 1})
		}
	}
	for len(x) < 5 {
		add(uint32(c*blockSize + rng.Intn(blockSize)))
	}
	for len(x) < 8 {
		add(uint32(numClasses*blockSize + rng.Intn(background)))
	}
	return x
}

func main() {
	mc := core.NewMulticlass(numClasses, core.Config{
		Width:    512,
		Depth:    1,
		HeapSize: 128,
		Lambda:   1e-6,
		Seed:     21,
	})
	fmt.Printf("%d-class ensemble footprint: %d bytes\n\n", numClasses, mc.MemoryBytes())

	rng := rand.New(rand.NewSource(2))
	const train = 40_000
	for i := 0; i < train; i++ {
		c := rng.Intn(numClasses)
		mc.Update(document(rng, c), c)
	}

	// Held-out accuracy.
	const test = 5_000
	correct := 0
	for i := 0; i < test; i++ {
		c := rng.Intn(numClasses)
		if mc.Predict(document(rng, c)) == c {
			correct++
		}
	}
	fmt.Printf("held-out accuracy over %d documents: %.3f\n\n", test, float64(correct)/test)

	// Per-class indicative features: the heaviest positive weights should
	// fall inside each class's vocabulary block.
	for c := 0; c < numClasses; c++ {
		fmt.Printf("class %d top features:", c)
		shown := 0
		for _, w := range mc.TopK(c, 64) {
			if w.Weight <= 0 || shown == 5 {
				if shown == 5 {
					break
				}
				continue
			}
			inBlock := int(w.Index) >= c*blockSize && int(w.Index) < (c+1)*blockSize
			fmt.Printf("  %d(%.2f,block=%v)", w.Index, w.Weight, inBlock)
			shown++
		}
		fmt.Println()
	}
}
