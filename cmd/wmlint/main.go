// wmlint is the project's static-analysis driver: a multichecker over the
// analyzers in internal/analysis/checkers, which mechanically enforce the
// invariants the design leans on — virtual-time discipline in the cluster
// layer (clockdet), deterministic iteration where bits hit the wire or a
// float accumulator (maporder), bounded allocation on decode paths
// (decodebounds), lock annotations (guardedby), and finiteness checks at
// ingest boundaries (nonfinite). See LINTING.md.
//
// Usage:
//
//	wmlint [packages]        # default ./...
//	wmlint -list             # describe the analyzers
//
// Findings print as path:line:col: message (analyzer); the exit status is
// 1 when any finding survives `//lint:ignore` filtering, so `make lint`
// and CI gate at zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wmsketch/internal/analysis"
	"wmsketch/internal/analysis/checkers"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range checkers.All() {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}

	findings, err := run(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmlint:", err)
		os.Exit(2)
	}
	for _, d := range findings {
		fmt.Println(d)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "wmlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func run(patterns []string) ([]analysis.Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.Expand(cwd, patterns)
	if err != nil {
		return nil, err
	}
	var findings []analysis.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		diags, err := analysis.Run(pkg, checkers.All())
		if err != nil {
			return nil, err
		}
		findings = append(findings, diags...)
	}
	// Print paths relative to the invocation directory, like go vet.
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}
	return findings, nil
}

func findModuleRoot(dir string) (string, error) {
	d := dir
	for {
		if fi, err := os.Stat(filepath.Join(d, "go.mod")); err == nil && !fi.IsDir() {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod at or above %s", dir)
		}
		d = parent
	}
}
