package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/stream"
)

// Throughput mode measures raw update throughput of the paper's primary
// contribution on the current hardware: single-thread AWM-/WM-Sketch at
// the standard 2 KB and 32 KB budgets, plus the sharded and Hogwild
// parallel learners across worker counts. Results go to stdout and,
// with -json, to a machine-readable file for the perf trajectory
// (`make bench-json` writes BENCH_throughput.json).

// throughputResult is one measurement row.
type throughputResult struct {
	Name          string  `json:"name"`
	Workers       int     `json:"workers"`
	Examples      int     `json:"examples"`
	NsPerUpdate   float64 `json:"ns_per_update"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
}

// throughputReport is the -json document.
type throughputReport struct {
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Timestamp  string             `json:"timestamp"`
	Results    []throughputResult `json:"results"`
}

func runThroughput(examples, workers int, jsonPath string) {
	if examples <= 0 {
		examples = 200_000
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	gen := datagen.RCV1Like(1)
	data := gen.Take(examples)

	cfg2KB := core.Config{Width: 256, Depth: 1, HeapSize: 128, Lambda: 1e-6, Seed: 1}
	cfg32KB := core.Config{Width: 4096, Depth: 1, HeapSize: 2048, Lambda: 1e-6, Seed: 1}
	cfgWM := core.Config{Width: 2048, Depth: 2, HeapSize: 128, Lambda: 1e-6, Seed: 1}
	cfgHog := cfg32KB
	cfgHog.Lambda = 0 // Hogwild mode requires λ = 0

	report := throughputReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	add := func(name string, w int, fn func() int) {
		start := time.Now()
		n := fn()
		elapsed := time.Since(start)
		ns := float64(elapsed.Nanoseconds()) / float64(n)
		r := throughputResult{
			Name: name, Workers: w, Examples: n,
			NsPerUpdate:   ns,
			UpdatesPerSec: 1e9 / ns,
		}
		report.Results = append(report.Results, r)
		fmt.Printf("%-28s workers=%-2d %12.1f ns/update %14.0f updates/sec\n",
			r.Name, r.Workers, r.NsPerUpdate, r.UpdatesPerSec)
	}

	single := func(l stream.Learner) func() int {
		return func() int {
			for _, ex := range data {
				l.Update(ex.X, ex.Y)
			}
			return len(data)
		}
	}
	add("awm_update_2kb_single", 1, single(core.NewAWMSketch(cfg2KB)))
	add("awm_update_32kb_single", 1, single(core.NewAWMSketch(cfg32KB)))
	add("wm_update_depth2_single", 1, single(core.NewWMSketch(cfgWM)))

	// Parallel learners at 1..workers, batch-routed (256 examples per
	// batch) the way a real ingest pipeline would feed them.
	const batch = 256
	parallel := func(cfg core.Config, opt core.ShardedOptions) func() int {
		return func() int {
			s := core.NewSharded(cfg, opt)
			n := 0
			for n+batch <= len(data) {
				s.UpdateBatch(data[n : n+batch])
				n += batch
			}
			s.Close() // includes queue drain, so the clock covers all updates
			return n
		}
	}
	// Sweep powers of two, then the requested maximum itself when it is not
	// a power of two (6- and 12-core machines deserve their own row).
	var sweep []int
	for w := 1; w <= workers; w *= 2 {
		sweep = append(sweep, w)
	}
	if last := sweep[len(sweep)-1]; last != workers {
		sweep = append(sweep, workers)
	}
	for _, w := range sweep {
		add(fmt.Sprintf("sharded_awm_32kb_w%d", w), w,
			parallel(cfg32KB, core.ShardedOptions{Workers: w, SyncEvery: -1}))
	}
	for _, w := range sweep {
		add(fmt.Sprintf("hogwild_32kb_w%d", w), w,
			parallel(cfgHog, core.ShardedOptions{Workers: w, SyncEvery: -1, Hogwild: true}))
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(jsonPath, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
}
