package main

import (
	"fmt"
	"os"
	"runtime"

	"wmsketch/internal/core"
	"wmsketch/internal/server"
)

// Serve-bench mode measures the full serving path — HTTP, JSON, batching,
// the sharded learner, snapshot refresh — rather than the bare learner that
// -throughput measures. It boots an in-process wmserve on a loopback
// listener, drives it with concurrent clients over generated classification
// streams, and reports throughput plus latency percentiles. With -json the
// report lands next to BENCH_throughput.json in the perf trajectory
// (`make bench-serve` writes BENCH_serve.json).
func runServeBench(examples, clients, workers int, jsonPath string) {
	if examples <= 0 {
		examples = 100_000
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report, err := server.RunLoadgen(server.LoadgenOptions{
		Server: server.Options{
			Backend: server.BackendSharded,
			Config:  core.Config{Width: 4096, Depth: 1, HeapSize: 2048, Lambda: 1e-6, Seed: 1},
			Sharded: core.ShardedOptions{Workers: workers},
		},
		Clients:  clients,
		Examples: examples,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("serve-bench: backend=%s workers=%d clients=%d\n",
		report.Backend, report.Workers, report.Clients)
	fmt.Printf("  %d examples in %.2fs = %.0f updates/sec\n",
		report.Examples, report.WallSeconds, report.UpdatesPerSec)
	fmt.Printf("  update  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms (%d reqs)\n",
		report.Update.P50Ms, report.Update.P95Ms, report.Update.P99Ms, report.Update.MaxMs, report.Update.Requests)
	fmt.Printf("  predict p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms (%d reqs)\n",
		report.Predict.P50Ms, report.Predict.P95Ms, report.Predict.P99Ms, report.Predict.MaxMs, report.Predict.Requests)
	if st := report.SlowestTrace; st != nil {
		fmt.Printf("  slowest sampled trace %s: %s %.2f ms (%s), %d root spans\n",
			st.TraceID, st.Root, st.DurationMs, st.Reason, len(st.Spans))
	}
	if jsonPath != "" {
		if err := server.WriteReport(report, jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", jsonPath)
	}
}
