package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"wmsketch/internal/core"
	"wmsketch/internal/server"
)

// Serve-bench mode measures the full serving path — transport, codec,
// batching, the sharded learner, snapshot refresh — rather than the bare
// learner that -throughput measures. It boots an in-process wmserve on a
// loopback listener and drives it with concurrent clients over generated
// classification streams, once per requested protocol: the HTTP/JSON API
// and the binary hot protocol (SERVING.md "Binary protocol") are recorded
// side by side so BENCH_serve.json documents what the binary path buys
// (`make bench-serve` writes both legs plus the speedup ratio).

// ServeBenchReport is the combined two-protocol report document written to
// BENCH_serve.json. Either leg may be absent when -proto selects one.
type ServeBenchReport struct {
	JSON   *server.LoadgenReport `json:"json,omitempty"`
	Binary *server.LoadgenReport `json:"binary,omitempty"`
	// BinarySpeedup is binary updates/sec over JSON updates/sec measured in
	// this same run (present only when both legs ran).
	BinarySpeedup float64 `json:"binary_speedup,omitempty"`
}

func serveBenchOptions(examples, clients, workers int, proto string) server.LoadgenOptions {
	opt := server.LoadgenOptions{
		Server: server.Options{
			Backend: server.BackendSharded,
			Config:  core.Config{Width: 4096, Depth: 1, HeapSize: 2048, Lambda: 1e-6, Seed: 1},
			Sharded: core.ShardedOptions{Workers: workers},
		},
		Clients:  clients,
		Examples: examples,
		Proto:    proto,
	}
	if proto == server.ProtoBinary {
		// The binary protocol is built for large batches (one frame, one
		// decode, one backend hand-off); run it the way it is meant to be
		// run. Each leg's report records its own batch size, so the
		// asymmetry is visible in BENCH_serve.json rather than hidden.
		opt.Batch = 512
	}
	return opt
}

func printLeg(report *server.LoadgenReport) {
	fmt.Printf("serve-bench[%s]: backend=%s workers=%d clients=%d\n",
		report.Proto, report.Backend, report.Workers, report.Clients)
	fmt.Printf("  %d examples in %.2fs = %.0f updates/sec\n",
		report.Examples, report.WallSeconds, report.UpdatesPerSec)
	fmt.Printf("  update  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms (%d reqs)\n",
		report.Update.P50Ms, report.Update.P95Ms, report.Update.P99Ms, report.Update.MaxMs, report.Update.Requests)
	fmt.Printf("  predict p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms (%d reqs)\n",
		report.Predict.P50Ms, report.Predict.P95Ms, report.Predict.P99Ms, report.Predict.MaxMs, report.Predict.Requests)
	if st := report.SlowestTrace; st != nil {
		fmt.Printf("  slowest sampled trace %s: %s %.2f ms (%s), %d root spans\n",
			st.TraceID, st.Root, st.DurationMs, st.Reason, len(st.Spans))
	}
}

func runServeBench(examples, clients, workers int, proto, jsonPath, baselinePath string) {
	if examples <= 0 {
		// Long enough that fixed startup (listener boot, dials, first-burst
		// ramp) is noise for the binary leg too, which finishes ~10x sooner
		// than the JSON leg at equal example counts.
		examples = 300_000
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var combined ServeBenchReport
	runLeg := func(p string) *server.LoadgenReport {
		report, err := server.RunLoadgen(serveBenchOptions(examples, clients, workers, p))
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		printLeg(report)
		return report
	}
	switch proto {
	case server.ProtoJSON:
		combined.JSON = runLeg(server.ProtoJSON)
	case server.ProtoBinary:
		combined.Binary = runLeg(server.ProtoBinary)
	case "both", "":
		combined.JSON = runLeg(server.ProtoJSON)
		combined.Binary = runLeg(server.ProtoBinary)
	default:
		fmt.Fprintf(os.Stderr, "error: -proto %q (want json, binary, or both)\n", proto)
		os.Exit(2)
	}
	if combined.JSON != nil && combined.Binary != nil && combined.JSON.UpdatesPerSec > 0 {
		combined.BinarySpeedup = combined.Binary.UpdatesPerSec / combined.JSON.UpdatesPerSec
		fmt.Printf("serve-bench: binary is %.1fx the JSON path (%.0f vs %.0f updates/sec)\n",
			combined.BinarySpeedup, combined.Binary.UpdatesPerSec, combined.JSON.UpdatesPerSec)
	}
	if jsonPath != "" {
		blob, err := json.MarshalIndent(&combined, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", jsonPath)
	}
	if baselinePath != "" {
		if err := checkServeBaseline(&combined, baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "serve-baseline: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("serve-baseline: ok")
	}
}

// serveBaselineTolerance is the allowed fractional drop below the recorded
// baseline before -serve-baseline fails (the tier-2 regression gate).
const serveBaselineTolerance = 0.25

// readBaseline loads a recorded BENCH_serve.json in either shape: the
// combined {json, binary} document, or the legacy single flat report,
// which is treated as a JSON-only baseline.
func readBaseline(path string) (*ServeBenchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var combined ServeBenchReport
	if err := json.Unmarshal(blob, &combined); err == nil &&
		(combined.JSON != nil || combined.Binary != nil) {
		return &combined, nil
	}
	var legacy server.LoadgenReport
	if err := json.Unmarshal(blob, &legacy); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &ServeBenchReport{JSON: &legacy}, nil
}

// checkServeBaseline fails when a measured leg drops more than
// serveBaselineTolerance below the baseline's updates/sec for the same
// protocol. Legs absent from either side are skipped, so the check still
// works against legacy JSON-only baselines.
func checkServeBaseline(got *ServeBenchReport, baselinePath string) error {
	base, err := readBaseline(baselinePath)
	if err != nil {
		return err
	}
	check := func(name string, got, base *server.LoadgenReport) error {
		if got == nil || base == nil || base.UpdatesPerSec <= 0 {
			return nil
		}
		floor := base.UpdatesPerSec * (1 - serveBaselineTolerance)
		if got.UpdatesPerSec < floor {
			return fmt.Errorf("%s path at %.0f updates/sec is more than %.0f%% below the recorded baseline %.0f (floor %.0f)",
				name, got.UpdatesPerSec, serveBaselineTolerance*100, base.UpdatesPerSec, floor)
		}
		fmt.Printf("serve-baseline: %s %.0f updates/sec vs baseline %.0f (floor %.0f): ok\n",
			name, got.UpdatesPerSec, base.UpdatesPerSec, floor)
		return nil
	}
	if err := check("json", got.JSON, base.JSON); err != nil {
		return err
	}
	return check("binary", got.Binary, base.Binary)
}
