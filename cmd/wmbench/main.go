// Command wmbench regenerates the paper's tables and figures, and measures
// raw update throughput on the current hardware.
//
// Usage:
//
//	wmbench -exp fig3            # one experiment at full scale
//	wmbench -exp all -quick      # everything, test-sized streams
//	wmbench -list                # enumerate experiment ids
//	wmbench -throughput          # single- and multi-core updates/sec
//	wmbench -throughput -json BENCH_throughput.json
//	wmbench -serve-bench -workers 4 -json BENCH_serve.json   # JSON + binary legs
//	wmbench -serve-bench -proto binary                       # one protocol only
//	wmbench -serve-bench -serve-baseline BENCH_serve.json    # tier-2 regression gate
//
// Each experiment id corresponds to a table or figure in "Sketching Linear
// Classifiers over Data Streams" (SIGMOD 2018); see DESIGN.md for the
// per-experiment index, EXPERIMENTS.md for paper-vs-measured results, and
// PERFORMANCE.md for the hot-path design behind the throughput numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wmsketch/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id to run, or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		quick      = flag.Bool("quick", false, "use test-sized streams")
		examples   = flag.Int("n", 0, "override stream length (0 = preset)")
		seed       = flag.Int64("seed", 42, "base random seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		throughput = flag.Bool("throughput", false, "measure update throughput instead of running experiments")
		serveBench = flag.Bool("serve-bench", false, "measure serving throughput (wmserve loadgen) instead of running experiments")
		clients    = flag.Int("clients", 4, "concurrent clients for -serve-bench")
		workers    = flag.Int("workers", 0, "max worker count for -throughput / sharded workers for -serve-bench (0 = GOMAXPROCS)")
		proto      = flag.String("proto", "both", "protocols for -serve-bench: json, binary, or both")
		baseline   = flag.String("serve-baseline", "", "compare -serve-bench updates/sec against this recorded BENCH_serve.json; fail if >25% below")
		jsonPath   = flag.String("json", "", "write -throughput/-serve-bench results to this JSON file")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *throughput {
		runThroughput(*examples, *workers, *jsonPath)
		return
	}
	if *serveBench {
		runServeBench(*examples, *clients, *workers, *proto, *jsonPath, *baseline)
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: wmbench -exp <id>|all [-quick] [-n N] [-seed S]")
		fmt.Fprintln(os.Stderr, "       wmbench -throughput [-workers N] [-n N] [-json FILE]")
		fmt.Fprintln(os.Stderr, "known experiments:", experiments.IDs())
		os.Exit(2)
	}

	opt := experiments.Full()
	if *quick {
		opt = experiments.Quick()
	}
	if *examples > 0 {
		opt.Examples = *examples
	}
	opt.Seed = *seed

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Println(tab)
			fmt.Printf("(%s completed in %s with %d examples)\n\n", id,
				time.Since(start).Round(time.Millisecond), opt.Examples)
		}
	}
}
