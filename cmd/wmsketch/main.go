// Command wmsketch trains an AWM-Sketch (or plain WM-Sketch) over a
// labeled stream from stdin or a file and prints the recovered top-K
// weights, online error rate, and memory footprint.
//
// Two input formats:
//
//	libsvm (default):  <label> <idx>:<val> ...
//	text (-text):      <label>\t<raw document text>
//
// In text mode, documents are tokenized and hashed into n-gram features
// (the paper's motivating spam-filter pipeline) and the top weights are
// printed with their n-gram strings.
//
// Usage:
//
//	wmsketch -width 1024 -heap 512 -k 20 < train.libsvm
//	wmsketch -input data.libsvm -variant wm -depth 4 -lambda 1e-5
//	wmsketch -text -ngrams 2 -k 10 < labeled_docs.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"wmsketch/internal/core"
	"wmsketch/internal/featurize"
	"wmsketch/internal/metrics"
	"wmsketch/internal/stream"
)

func main() {
	var (
		input   = flag.String("input", "-", "libsvm input path, '-' for stdin")
		variant = flag.String("variant", "awm", "sketch variant: awm or wm")
		width   = flag.Int("width", 1024, "sketch width (buckets per row)")
		depth   = flag.Int("depth", 1, "sketch depth (rows)")
		heap    = flag.Int("heap", 512, "heap capacity (active set / top tracking)")
		lambda  = flag.Float64("lambda", 1e-6, "l2 regularization strength")
		topK    = flag.Int("k", 20, "number of top weights to print")
		seed    = flag.Int64("seed", 1, "hash seed")
		norm    = flag.Bool("normalize", false, "l1-normalize feature vectors")
		text    = flag.Bool("text", false, "parse 'label<TAB>text' lines instead of libsvm")
		ngrams  = flag.Int("ngrams", 2, "text mode: max n-gram order")
		pairs   = flag.Int("pairs", 0, "text mode: skip-gram pair window (0 = off)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}

	cfg := core.Config{
		Width: *width, Depth: *depth, HeapSize: *heap,
		Lambda: *lambda, Seed: *seed,
	}
	var learner stream.Learner
	switch *variant {
	case "awm":
		learner = core.NewAWMSketch(cfg)
	case "wm":
		learner = core.NewWMSketch(cfg)
	default:
		fmt.Fprintf(os.Stderr, "error: unknown variant %q (awm|wm)\n", *variant)
		os.Exit(2)
	}

	var er metrics.ErrorRate
	consume := func(ex stream.Example) {
		x := ex.X
		if *norm {
			x = x.Normalize()
		}
		er.Record(learner.Predict(x), ex.Y)
		learner.Update(x, ex.Y)
	}

	var extractor *featurize.Extractor
	if *text {
		extractor = featurize.NewRecording(featurize.Config{
			NGrams: *ngrams, SkipWindow: *pairs, HashSeed: uint32(*seed),
		})
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
			if ex, ok := extractor.ExtractLabeled(sc.Text()); ok {
				consume(ex)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	} else {
		err := stream.ReadLibSVM(r, func(ex stream.Example) error {
			consume(ex)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if er.Count() == 0 {
		fmt.Fprintln(os.Stderr, "error: no examples read")
		os.Exit(1)
	}

	fmt.Printf("examples:     %d\n", er.Count())
	fmt.Printf("online error: %.4f\n", er.Rate())
	fmt.Printf("memory:       %d bytes (cost model)\n", learner.MemoryBytes())
	fmt.Printf("top-%d weights:\n", *topK)
	for i, w := range learner.TopK(*topK) {
		label := fmt.Sprintf("feature %-10d", w.Index)
		if extractor != nil {
			if name, ok := extractor.Name(w.Index); ok {
				label = fmt.Sprintf("%-20q", name)
			}
		}
		fmt.Printf("  %3d. %s %+.6f\n", i+1, label, w.Weight)
	}
}
