// Command wmserve serves a WM-/AWM-Sketch classifier over HTTP/JSON: live
// training (/v1/update), prediction (/v1/predict), weight recovery
// (/v1/estimate, /v1/topk), operational stats (/v1/stats), and checkpoint
// save/restore (/v1/checkpoint). See SERVING.md for the API reference.
//
// Usage:
//
//	wmserve -addr :8080 -backend sharded -workers 4 -checkpoint model.ckpt
//	wmserve -loadgen -clients 8 -examples 200000 -json BENCH_serve.json
//	wmserve -loadgen -target http://host:8080 -clients 8
//	wmserve -smoke          # end-to-end self-test (CI runs this)
//
// On SIGINT/SIGTERM the server drains in-flight requests and flushes a
// final checkpoint to -checkpoint (when set) before exiting. With -restore,
// an existing checkpoint at that path is loaded at boot, so a restarted
// server resumes the stream where it left off.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wmsketch/internal/cluster/sim"
	"wmsketch/internal/core"
	"wmsketch/internal/server"
	"wmsketch/internal/trace"
)

// splitPeers parses the -peers flag: comma-separated base URLs, blanks
// ignored.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		binAddr   = flag.String("bin-addr", "", "binary hot-protocol listen address (e.g. :8081; empty disables; see SERVING.md \"Binary protocol\")")
		backend   = flag.String("backend", server.BackendSharded, "learner backend: sharded, awm, or wm")
		width     = flag.Int("width", 4096, "sketch width (buckets per row)")
		depth     = flag.Int("depth", 1, "sketch depth (rows)")
		heapSize  = flag.Int("heap", 2048, "top-weight heap / active-set capacity")
		lambda    = flag.Float64("lambda", 1e-6, "l2 regularization strength")
		seed      = flag.Int64("seed", 42, "hash seed")
		workers   = flag.Int("workers", 0, "sharded backend workers (0 = GOMAXPROCS)")
		syncEvery = flag.Int("sync-every", 0, "sharded snapshot refresh cadence in updates (0 = default, <0 disables)")
		ckpt      = flag.String("checkpoint", "", "checkpoint path: /v1/checkpoint default and final flush on shutdown")
		restore   = flag.Bool("restore", false, "restore from -checkpoint at boot when the file exists")
		authToken = flag.String("auth-token", "", "bearer token required on mutating endpoints (update/checkpoint/cluster push)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and net/http/pprof on this separate listener (e.g. 127.0.0.1:6060; empty disables)")

		peers          = flag.String("peers", "", "cluster: comma-separated peer base URLs (enables replication; see CLUSTER.md)")
		nodeID         = flag.String("node-id", "", "cluster: this node's unique id (default: this node's advertised http://addr)")
		gossipInterval = flag.Duration("gossip-interval", 2*time.Second, "cluster: anti-entropy round cadence")
		clusterHistory = flag.Int("cluster-history", 8, "cluster: snapshot versions kept as delta bases before falling back to full sync")
		gossipTimeout  = flag.Duration("gossip-timeout", 10*time.Second, "cluster: wall-clock budget for one peer's gossip round (negative disables the deadline)")
		gossipFanout   = flag.Int("gossip-fanout", 0, "cluster: peers sampled per round (0 = log2 of the peer count, negative = full sweep)")
		originGC       = flag.Duration("origin-gc", 15*time.Minute, "cluster: idle age before a departed node's model decays out of the served mix (negative disables)")
		chaosSpec      = flag.String("chaos", "", "cluster: fault-inject outbound gossip, e.g. drop=0.1,dup=0.05,corrupt=0.01,delay=50ms,seed=7 (testing only)")

		loadgen   = flag.Bool("loadgen", false, "run the load generator instead of serving")
		target    = flag.String("target", "", "loadgen: drive this URL instead of a self-hosted server")
		targetBin = flag.String("target-bin", "", "loadgen: drive this binary listener (host:port) when -proto binary")
		proto     = flag.String("proto", "json", "loadgen: wire protocol, json or binary")
		inFlight  = flag.Int("in-flight", 32, "loadgen: binary pipeline depth per connection")
		clients   = flag.Int("clients", 4, "loadgen: concurrent clients")
		examples  = flag.Int("examples", 50_000, "loadgen: total examples")
		batch     = flag.Int("batch", 64, "loadgen: examples per update request")
		jsonPath  = flag.String("json", "BENCH_serve.json", "loadgen: write the report to this file ('' disables)")

		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON lines (default: logfmt-style text)")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")

		smoke = flag.Bool("smoke", false, "run the end-to-end self-test and exit")

		clusterSmoke = flag.Bool("cluster-smoke", false, "run the multi-node convergence self-test and exit (CI runs this)")
		clusterNodes = flag.Int("cluster-nodes", 3, "cluster-smoke: number of in-process nodes")
		clusterJSON  = flag.String("cluster-json", "BENCH_cluster.json", "cluster-smoke: write the convergence/bytes report here ('' disables)")

		simMode  = flag.Bool("sim", false, "run the discrete-event cluster simulation (100 nodes, loss+partition+churn) and exit (CI runs this)")
		simNodes = flag.Int("sim-nodes", 0, "sim: fleet size override (0 = the standard 100-node acceptance scenario)")
		simSeed  = flag.Int64("sim-seed", 0, "sim: scenario seed override (0 = the standard fixed seed)")
		simJSON  = flag.String("sim-json", "BENCH_sim.json", "sim: write the report here ('' disables)")
	)
	flag.Parse()

	logger, err := buildLogger(*logJSON, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmserve:", err)
		os.Exit(2)
	}

	opt := server.Options{
		Logger:  logger,
		Backend: *backend,
		Config: core.Config{
			Width: *width, Depth: *depth, HeapSize: *heapSize,
			Lambda: *lambda, Seed: *seed,
		},
		Sharded:        core.ShardedOptions{Workers: *workers, SyncEvery: *syncEvery},
		CheckpointPath: *ckpt,
		AuthToken:      *authToken,
	}
	if *peers != "" {
		self := *nodeID
		if self == "" {
			// A host-less -addr like ":8080" would default every node in
			// the fleet to the same id ("http://:8080"), making each drop
			// the others' frames as its own origin — refuse to guess.
			if host, _, err := net.SplitHostPort(*addr); err != nil || host == "" {
				fmt.Fprintf(os.Stderr, "wmserve: -peers requires -node-id when -addr (%q) has no host part\n", *addr)
				os.Exit(2)
			}
			self = "http://" + *addr
		}
		opt.Cluster = server.ClusterOptions{
			Self:          self,
			Peers:         splitPeers(*peers),
			Interval:      *gossipInterval,
			HistoryDepth:  *clusterHistory,
			GossipTimeout: *gossipTimeout,
			Fanout:        *gossipFanout,
			OriginGCAfter: *originGC,
			Chaos:         *chaosSpec,
		}
	}

	switch {
	case *simMode:
		if err := runSim(*simNodes, *simSeed, *simJSON); err != nil {
			fmt.Fprintln(os.Stderr, "sim: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("sim: ok")
	case *clusterSmoke:
		err := server.ClusterSmoke(opt, server.ClusterSmokeOptions{
			Nodes:    *clusterNodes,
			JSONPath: *clusterJSON,
			Seed:     *seed,
		}, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cluster-smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("cluster-smoke: ok")
	case *smoke:
		if err := server.Smoke(opt, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke: ok")
	case *loadgen:
		report, err := server.RunLoadgen(server.LoadgenOptions{
			TargetURL: *target,
			TargetBin: *targetBin,
			Proto:     *proto,
			InFlight:  *inFlight,
			Server:    opt,
			Clients:   *clients,
			Examples:  *examples,
			Batch:     *batch,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("loadgen: %d examples in %.2fs = %.0f updates/sec (update p50 %.2f ms, p99 %.2f ms)\n",
			report.Examples, report.WallSeconds, report.UpdatesPerSec,
			report.Update.P50Ms, report.Update.P99Ms)
		if *jsonPath != "" {
			if err := server.WriteReport(report, *jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", *jsonPath)
		}
	default:
		if err := serve(opt, logger, *addr, *binAddr, *debugAddr, *restore); err != nil {
			fmt.Fprintln(os.Stderr, "wmserve:", err)
			os.Exit(1)
		}
	}
}

// buildLogger assembles the process logger: text or JSON lines on stderr at
// the requested level, wrapped so every record logged under a traced
// request context carries its trace_id/span_id attributes.
func buildLogger(jsonLines bool, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q (want debug, info, warn, or error)", level)
	}
	ho := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if jsonLines {
		h = slog.NewJSONHandler(os.Stderr, ho)
	} else {
		h = slog.NewTextHandler(os.Stderr, ho)
	}
	return slog.New(trace.NewLogHandler(h)), nil
}

// runSim drives the discrete-event cluster simulation (loss + partition +
// churn under a fixed seed), writes the report, and fails when the fleet
// does not converge — the CI robustness gate.
func runSim(nodes int, seed int64, jsonPath string) error {
	sc := sim.Default100()
	if nodes > 0 {
		sc.Nodes = nodes
	}
	if seed != 0 {
		sc.Seed = seed
	}
	sc.Logf = func(format string, args ...interface{}) {
		fmt.Printf(format+"\n", args...)
	}
	rep, err := sim.Run(sc)
	if err != nil {
		return err
	}
	fmt.Printf("sim: %d live / %d dead nodes, %d RPCs (%d dropped, %d partition-refused, %d corrupted), %.1f MB on wire\n",
		rep.LiveNodes, rep.DeadNodes, rep.RPCs, rep.Dropped, rep.PartitionRefusals, rep.Corrupted,
		float64(rep.BytesOnWire)/1e6)
	fmt.Printf("sim: max rel err %.4g (gate %.2f), %d/%d fully synced, max dead-origin weight %g, %d origins GCed\n",
		rep.MaxRelErr, sim.RelErrGate, rep.FullySynced, rep.LiveNodes, rep.MaxDeadWeight, rep.OriginsGCed)
	fmt.Printf("sim: causal lineage: %d applied frames checked, %d violations, %d dropped entries (consistent=%v)\n",
		rep.LineageApplies, rep.LineageViolations, rep.LineageDropped, rep.LineageConsistent)
	if jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	if !rep.Converged {
		return fmt.Errorf("fleet did not converge: max rel err %.4g, max dead-origin weight %g",
			rep.MaxRelErr, rep.MaxDeadWeight)
	}
	return nil
}

func serve(opt server.Options, logger *slog.Logger, addr, binAddr, debugAddr string, restore bool) error {
	srv, err := server.New(opt)
	if err != nil {
		return err
	}
	if debugAddr != "" {
		ds, err := startDebugServer(srv, logger, debugAddr)
		if err != nil {
			return err
		}
		defer ds.Close()
	}
	if binAddr != "" {
		bln, err := net.Listen("tcp", binAddr)
		if err != nil {
			return fmt.Errorf("bin listener: %w", err)
		}
		defer bln.Close()
		go func() {
			if err := srv.ServeBin(bln); err != nil {
				logger.Error("binary listener failed", slog.String("error", err.Error()))
			}
		}()
		logger.Info("binary protocol listening", slog.String("addr", binAddr))
	}
	if restore && opt.CheckpointPath != "" {
		if _, err := os.Stat(opt.CheckpointPath); err == nil {
			if err := srv.Restore(opt.CheckpointPath); err != nil {
				return fmt.Errorf("restore %s: %w", opt.CheckpointPath, err)
			}
			logger.Info("restored checkpoint", slog.String("path", opt.CheckpointPath))
		}
	}

	hs := &http.Server{Addr: addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", slog.String("backend", opt.Backend), slog.String("addr", addr))
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// Final flush: Close checkpoints to opt.CheckpointPath when configured.
	if err := srv.Close(); err != nil {
		return fmt.Errorf("final checkpoint: %w", err)
	}
	if opt.CheckpointPath != "" {
		logger.Info("flushed final checkpoint", slog.String("path", opt.CheckpointPath))
	}
	return nil
}
