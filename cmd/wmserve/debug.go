package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"

	"wmsketch/internal/server"
)

// Debug listener (-debug-addr): /metrics, the net/http/pprof suite, and the
// flight recorder's /debug/traces endpoints on a separate socket, so
// profiling, scraping, and trace inspection never share a port — or a
// firewall rule — with the serving API. The main -addr intentionally does
// not get pprof or traces: its /metrics is for scrapers colocated with the
// API, while profiles and span trees stay opt-in and bindable to loopback.
func startDebugServer(srv *server.Server, logger *slog.Logger, addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	ds := &http.Server{Handler: srv.DebugMux()}
	go func() { _ = ds.Serve(ln) }()
	logger.Info("debug endpoints up",
		slog.String("addr", ln.Addr().String()),
		slog.String("paths", "/metrics /debug/pprof /debug/traces /debug/traces/slowest"))
	return ds, nil
}
