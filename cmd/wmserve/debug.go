package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"wmsketch/internal/server"
)

// Debug listener (-debug-addr): /metrics and the net/http/pprof suite on a
// separate socket, so profiling and scraping never share a port — or a
// firewall rule — with the serving API. The main -addr intentionally does
// not get pprof: its /metrics is for scrapers colocated with the API, while
// heap/cpu profiles stay opt-in and bindable to loopback only.
func startDebugServer(srv *server.Server, addr string) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = srv.MetricsRegistry().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	ds := &http.Server{Handler: mux}
	go func() { _ = ds.Serve(ln) }()
	fmt.Printf("wmserve: debug endpoints (/metrics, /debug/pprof) on %s\n", ln.Addr())
	return ds, nil
}
