// Package wmsketch's root benchmark suite regenerates every table and
// figure in the paper's evaluation as a testing.B benchmark. Each bench
// runs the corresponding harness from internal/experiments at a reduced
// stream length so that `go test -bench=.` completes in minutes; use
// cmd/wmbench for the full-scale runs recorded in EXPERIMENTS.md.
//
// Micro-benchmarks of the core update/query operations live alongside
// their packages (internal/core, internal/sketch, internal/baselines).
package wmsketch_test

import (
	"testing"

	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/experiments"
	"wmsketch/internal/stream"
)

// benchOpt sizes experiment benchmarks; kept small because each b.N
// iteration replays the entire experiment.
func benchOpt() experiments.Options {
	return experiments.Options{Examples: 10_000, Seed: 42}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := benchOpt()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (dataset summary).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table 2 (optimal sketch configurations).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table 3 (recovered PMI pairs).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig3 regenerates Figure 3 (recovery error across datasets).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Figure 4 (recovery error across budgets).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5 (recovery error across lambda).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (online classification error).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (normalized runtime).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (relative-risk distributions).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (weight-risk correlation).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (deltoid recall).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (PMI retrieval vs width/lambda).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkAblation regenerates the design-choice ablation table.
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// Per-operation benchmarks of the paper's primary contribution at the
// standard budgets, reported as ns per Update (prediction + gradient +
// heap maintenance).

func benchSketchUpdate(b *testing.B, mk func() stream.Learner) {
	b.Helper()
	gen := datagen.RCV1Like(1)
	examples := gen.Take(4096)
	l := mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := examples[i&4095]
		l.Update(ex.X, ex.Y)
	}
}

// BenchmarkAWMSketchUpdate2KB measures the paper's smallest configuration.
func BenchmarkAWMSketchUpdate2KB(b *testing.B) {
	benchSketchUpdate(b, func() stream.Learner {
		return core.NewAWMSketch(core.Config{Width: 256, Depth: 1, HeapSize: 128, Lambda: 1e-6, Seed: 1})
	})
}

// BenchmarkAWMSketchUpdate32KB measures the paper's largest configuration.
func BenchmarkAWMSketchUpdate32KB(b *testing.B) {
	benchSketchUpdate(b, func() stream.Learner {
		return core.NewAWMSketch(core.Config{Width: 4096, Depth: 1, HeapSize: 2048, Lambda: 1e-6, Seed: 1})
	})
}

// BenchmarkWMSketchUpdateDepth2 measures the basic WM-Sketch at 2KB.
func BenchmarkWMSketchUpdateDepth2(b *testing.B) {
	benchSketchUpdate(b, func() stream.Learner {
		return core.NewWMSketch(core.Config{Width: 128, Depth: 2, HeapSize: 128, Lambda: 1e-6, Seed: 1})
	})
}

// BenchmarkWMSketchUpdateDepth8 measures depth scaling of the WM-Sketch.
func BenchmarkWMSketchUpdateDepth8(b *testing.B) {
	benchSketchUpdate(b, func() stream.Learner {
		return core.NewWMSketch(core.Config{Width: 128, Depth: 8, HeapSize: 128, Lambda: 1e-6, Seed: 1})
	})
}

// BenchmarkAWMSketchQuery measures point-query latency (active set hit and
// sketch-tail miss mixed).
func BenchmarkAWMSketchQuery(b *testing.B) {
	gen := datagen.RCV1Like(1)
	a := core.NewAWMSketch(core.Config{Width: 4096, Depth: 1, HeapSize: 2048, Lambda: 1e-6, Seed: 1})
	for i := 0; i < 20000; i++ {
		ex := gen.Next()
		a.Update(ex.X, ex.Y)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += a.Estimate(uint32(i % 47000))
	}
	_ = sink
}

// Multi-core throughput benchmarks of the sharded learner (private shards
// with periodic merge, and the lock-free Hogwild mode). RunParallel drives
// Update from GOMAXPROCS goroutines, exercising the router and worker
// queues the way a multi-producer ingest pipeline would.

func benchSharded(b *testing.B, opt core.ShardedOptions, lambda float64) {
	b.Helper()
	gen := datagen.RCV1Like(1)
	examples := gen.Take(4096)
	s := core.NewSharded(core.Config{
		Width: 4096, Depth: 1, HeapSize: 2048, Lambda: lambda, Seed: 1,
	}, opt)
	const batch = 256
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			// One op = one example; route in batches to amortize channel
			// synchronization, the way a real ingest pipeline would.
			if i%batch == 0 {
				lo := i & 4095
				s.UpdateBatch(examples[lo : lo+batch])
			}
			i++
		}
	})
	b.StopTimer()
	s.Close()
}

// BenchmarkShardedUpdate32KB4Workers measures private-shard parallel
// training at the paper's largest configuration.
func BenchmarkShardedUpdate32KB4Workers(b *testing.B) {
	benchSharded(b, core.ShardedOptions{Workers: 4, SyncEvery: -1}, 1e-6)
}

// BenchmarkHogwildUpdate32KB4Workers measures lock-free shared-sketch
// training (Section 9).
func BenchmarkHogwildUpdate32KB4Workers(b *testing.B) {
	benchSharded(b, core.ShardedOptions{Workers: 4, SyncEvery: -1, Hogwild: true}, 0)
}

// BenchmarkAWMSketchTopK measures TopK retrieval latency.
func BenchmarkAWMSketchTopK(b *testing.B) {
	gen := datagen.RCV1Like(1)
	a := core.NewAWMSketch(core.Config{Width: 4096, Depth: 1, HeapSize: 2048, Lambda: 1e-6, Seed: 1})
	for i := 0; i < 20000; i++ {
		ex := gen.Next()
		a.Update(ex.X, ex.Y)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := a.TopK(128); len(got) == 0 {
			b.Fatal("empty TopK")
		}
	}
}
