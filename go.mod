module wmsketch

go 1.24
