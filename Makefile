# Development targets for the wmsketch repository.

GO ?= go

.PHONY: all build vet test race bench bench-json bench-serve serve-smoke cluster-smoke bench-cluster bench-sim fuzz-smoke

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Micro-benchmarks of the hot paths (sketch update/estimate, heap ops,
# fused learner updates, sharded/Hogwild throughput).
bench:
	$(GO) test -run '^$$' -bench 'Update|Heap|CountSketch|Sharded|Hogwild' -benchtime 2s . ./internal/sketch ./internal/topk

# Machine-readable throughput snapshot for the perf trajectory: writes
# BENCH_throughput.json via cmd/wmbench (see PERFORMANCE.md).
bench-json:
	$(GO) run ./cmd/wmbench -throughput -json BENCH_throughput.json

# End-to-end HTTP serving throughput/latency (wmserve + loadgen): writes
# BENCH_serve.json next to BENCH_throughput.json (see SERVING.md).
bench-serve:
	$(GO) run ./cmd/wmbench -serve-bench -json BENCH_serve.json

# Boot wmserve on loopback and exercise the whole API end to end:
# update -> predict -> checkpoint -> restore -> verify, plus a concurrent
# loadgen smoke. CI runs this.
serve-smoke:
	$(GO) run ./cmd/wmserve -smoke

# Boot a 3-node loopback cluster, train disjoint partitions, gossip to
# quiescence, and verify convergence vs the single-learner-on-union
# baseline (CLUSTER.md). CI runs this with the report discarded.
cluster-smoke:
	$(GO) run ./cmd/wmserve -cluster-smoke -cluster-json ''

# The same harness, recording rounds-to-convergence and bytes-on-wire
# (full-sync rounds vs delta rounds vs idle rounds) to BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/wmserve -cluster-smoke -cluster-json BENCH_cluster.json

# Discrete-event robustness gate: 100 in-memory nodes under 10% message
# loss, a 30-round partition, and 20% churn, fixed seed. Fails unless
# survivors converge within the relative-error gate AND every churned-out
# node's origin is GC'd to zero weight. Writes BENCH_sim.json. CI runs this.
bench-sim:
	$(GO) run ./cmd/wmserve -sim -sim-json BENCH_sim.json

# Short fuzz pass over the gossip wire decoder: hostile byte streams must
# be rejected cleanly (no panic, no unbounded allocation, CRC-verified
# payloads). CI runs this from the seeded corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadFrames -fuzztime 20s ./internal/cluster
