# Development targets for the wmsketch repository.

GO ?= go

.PHONY: all build vet test race bench bench-json

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Micro-benchmarks of the hot paths (sketch update/estimate, heap ops,
# fused learner updates, sharded/Hogwild throughput).
bench:
	$(GO) test -run '^$$' -bench 'Update|Heap|CountSketch|Sharded|Hogwild' -benchtime 2s . ./internal/sketch ./internal/topk

# Machine-readable throughput snapshot for the perf trajectory: writes
# BENCH_throughput.json via cmd/wmbench (see PERFORMANCE.md).
bench-json:
	$(GO) run ./cmd/wmbench -throughput -json BENCH_throughput.json
