# Development targets for the wmsketch repository.

GO ?= go

# Pinned external linter versions: CI installs exactly these, so a lint
# run is reproducible. Locally they are optional — `make lint` skips any
# that are not on PATH and always runs wmlint.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build vet test race bench bench-json bench-serve bench-serve-check serve-smoke cluster-smoke bench-cluster bench-sim fuzz-smoke lint lint-tools

all: vet build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Micro-benchmarks of the hot paths (sketch update/estimate, heap ops,
# fused learner updates, sharded/Hogwild throughput).
bench:
	$(GO) test -run '^$$' -bench 'Update|Heap|CountSketch|Sharded|Hogwild' -benchtime 2s . ./internal/sketch ./internal/topk

# Machine-readable throughput snapshot for the perf trajectory: writes
# BENCH_throughput.json via cmd/wmbench (see PERFORMANCE.md).
bench-json:
	$(GO) run ./cmd/wmbench -throughput -json BENCH_throughput.json

# End-to-end serving throughput/latency (wmserve + loadgen), one leg per
# protocol — HTTP/JSON and the binary hot protocol (SERVING.md "Binary
# protocol") — recorded side by side with the speedup ratio in
# BENCH_serve.json next to BENCH_throughput.json.
bench-serve:
	$(GO) run ./cmd/wmbench -serve-bench -json BENCH_serve.json

# Tier-2 regression gate: re-measure both protocol legs and fail if either
# drops more than 25% below the updates/sec recorded in BENCH_serve.json.
# CI runs this.
bench-serve-check:
	$(GO) run ./cmd/wmbench -serve-bench -json /tmp/bench_serve_check.json -serve-baseline BENCH_serve.json

# Boot wmserve on loopback and exercise the whole API end to end:
# update -> predict -> checkpoint -> restore -> verify, plus a concurrent
# loadgen smoke. CI runs this.
serve-smoke:
	$(GO) run ./cmd/wmserve -smoke

# Boot a 3-node loopback cluster, train disjoint partitions, gossip to
# quiescence, and verify convergence vs the single-learner-on-union
# baseline (CLUSTER.md). CI runs this with the report discarded.
cluster-smoke:
	$(GO) run ./cmd/wmserve -cluster-smoke -cluster-json ''

# The same harness, recording rounds-to-convergence and bytes-on-wire
# (full-sync rounds vs delta rounds vs idle rounds) to BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/wmserve -cluster-smoke -cluster-json BENCH_cluster.json

# Discrete-event robustness gate: 100 in-memory nodes under 10% message
# loss, a 30-round partition, and 20% churn, fixed seed. Fails unless
# survivors converge within the relative-error gate AND every churned-out
# node's origin is GC'd to zero weight. Writes BENCH_sim.json. CI runs this.
bench-sim:
	$(GO) run ./cmd/wmserve -sim -sim-json BENCH_sim.json

# Short fuzz pass over the surfaces hostile bytes can reach: the gossip
# wire decoder, sketch checkpoint restore, and both directions of the
# binary hot protocol's frame decoder. All must reject cleanly (no panic,
# no unbounded allocation); accepted inputs must round-trip bit-exactly.
# CI runs this from the seeded corpora.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadFrames -fuzztime 20s ./internal/cluster
	$(GO) test -run '^$$' -fuzz FuzzReadCountSketch -fuzztime 20s ./internal/sketch
	$(GO) test -run '^$$' -fuzz FuzzReadRequestFrame -fuzztime 20s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzReadResponseFrame -fuzztime 20s ./internal/wire

# Static analysis gate (LINTING.md): wmlint (the project's own analyzers —
# clockdet, maporder, decodebounds, guardedby, nonfinite, metricnames,
# ctxflow) always runs and must report zero findings; staticcheck and
# govulncheck run when installed (CI installs the pinned versions via
# lint-tools).
lint:
	$(GO) run ./cmd/wmlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (make lint-tools)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (make lint-tools)"; \
	fi

# Install the pinned external linters (network required; CI uses this).
lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
