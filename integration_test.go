// Cross-module integration tests: end-to-end flows that span the text
// featurizer, libsvm I/O, the sketches, serialization, and the evaluation
// metrics — the paths a downstream user of this library actually exercises.
package wmsketch_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"wmsketch/internal/baselines"
	"wmsketch/internal/core"
	"wmsketch/internal/datagen"
	"wmsketch/internal/featurize"
	"wmsketch/internal/linear"
	"wmsketch/internal/memory"
	"wmsketch/internal/metrics"
	"wmsketch/internal/sketch"
	"wmsketch/internal/stream"
)

// TestLibSVMTrainRecoverRoundTrip drives the full CLI path: synthesize a
// dataset, serialize it to libsvm text, parse it back, train an AWM-Sketch,
// and verify recovery of the generator's planted weights.
func TestLibSVMTrainRecoverRoundTrip(t *testing.T) {
	gen := datagen.NewClassification(datagen.ClassificationConfig{
		Name: "it", D: 5000, NNZ: 8, ZipfS: 1.3,
		NumSignal: 20, SignalMinRank: 0, SignalMaxRank: 200,
		WeightScale: 6, SignalRate: 0.7, Seed: 9,
	})
	var buf bytes.Buffer
	for i := 0; i < 20000; i++ {
		if err := stream.WriteLibSVM(&buf, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	sketch := core.NewAWMSketch(core.Config{
		Width: 512, Depth: 1, HeapSize: 256, Lambda: 1e-6, Seed: 10,
	})
	var er metrics.ErrorRate
	err := stream.ReadLibSVM(&buf, func(ex stream.Example) error {
		er.Record(sketch.Predict(ex.X), ex.Y)
		sketch.Update(ex.X, ex.Y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if er.Count() != 20000 {
		t.Fatalf("read %d examples", er.Count())
	}
	if er.Rate() > 0.35 {
		t.Fatalf("online error %.3f", er.Rate())
	}
	// Most of the top-10 recovered features must be planted signal.
	truth := gen.TrueWeights()
	hits := 0
	for _, w := range sketch.TopK(10) {
		if truth[w.Index] != 0 && truth[w.Index]*w.Weight > 0 {
			hits++
		}
	}
	if hits < 6 {
		t.Fatalf("only %d/10 top features are correctly-signed planted signal", hits)
	}
}

// TestCheckpointResumeMatchesUninterrupted verifies the full checkpoint
// flow: train, serialize mid-stream, deserialize, finish training, and
// compare against an uninterrupted run example-for-example.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	genA := datagen.RCV1Like(3)
	genB := datagen.RCV1Like(3)
	cfg := core.Config{Width: 512, Depth: 1, HeapSize: 128, Lambda: 1e-5, Seed: 4}
	straight := core.NewAWMSketch(cfg)
	first := core.NewAWMSketch(cfg)
	for i := 0; i < 5000; i++ {
		ex := genA.Next()
		straight.Update(ex.X, ex.Y)
		ey := genB.Next()
		first.Update(ey.X, ey.Y)
	}
	var buf bytes.Buffer
	if _, err := first.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := core.LoadAWMSketch(&buf, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		ex := genA.Next()
		straight.Update(ex.X, ex.Y)
		ey := genB.Next()
		resumed.Update(ey.X, ey.Y)
	}
	for i := uint32(0); i < 2000; i++ {
		if resumed.Estimate(i) != straight.Estimate(i) {
			t.Fatalf("feature %d: resumed %g vs straight %g",
				i, resumed.Estimate(i), straight.Estimate(i))
		}
	}
}

// TestTextPipelineAgainstBaselines runs the paper's motivating text
// scenario through featurize and compares the AWM-Sketch against feature
// hashing at the same budget: accuracy should be comparable while only the
// AWM-Sketch can name its top features.
func TestTextPipelineAgainstBaselines(t *testing.T) {
	ext := featurize.NewRecording(featurize.Config{NGrams: 2})
	const budget = 4 * 1024
	awmCfg := memory.PaperAWMConfig(budget)
	awm := core.NewAWMSketch(core.Config{
		Width: awmCfg.Width, Depth: 1, HeapSize: awmCfg.Heap, Lambda: 1e-6, Seed: 8,
	})
	hash := baselines.NewFeatureHash(baselines.Config{
		Budget: memory.HashBuckets(budget), Lambda: 1e-6, Seed: 8,
	})
	if awm.MemoryBytes() > budget || hash.MemoryBytes() > budget {
		t.Fatal("budget violated")
	}

	spam := []string{"free money offer", "click to win money", "cheap pills offer now",
		"winner winner free prize", "claim your free offer"}
	ham := []string{"team meeting today", "quarterly report attached", "lunch plans tomorrow",
		"project review notes", "thanks for the update"}
	var awmErr, hashErr metrics.ErrorRate
	for i := 0; i < 6000; i++ {
		var text string
		y := 1
		if i%2 == 0 {
			y = -1
			text = ham[(i/2)%len(ham)]
		} else {
			text = spam[(i/2)%len(spam)]
		}
		x := ext.Extract(text)
		awmErr.Record(awm.Predict(x), y)
		hashErr.Record(hash.Predict(x), y)
		awm.Update(x, y)
		hash.Update(x, y)
	}
	if awmErr.Rate() > hashErr.Rate()+0.02 {
		t.Fatalf("AWM error %.4f far above Hash %.4f", awmErr.Rate(), hashErr.Rate())
	}
	// Interpretability: the AWM-Sketch's top feature resolves to a real
	// n-gram; feature hashing exposes no identities at all.
	top := awm.TopK(1)
	if len(top) == 0 {
		t.Fatal("no recovered features")
	}
	if _, ok := ext.Name(top[0].Index); !ok {
		t.Fatal("top feature has no recorded name")
	}
	if got := hash.TopK(5); got != nil {
		t.Fatal("plain feature hashing should not answer TopK")
	}
}

// TestSketchMergeAcrossShards simulates sharded frequency aggregation:
// Count-Sketches built on disjoint shards merge into the sketch of the
// union, and heavy-hitter estimates survive the merge.
func TestSketchMergeAcrossShards(t *testing.T) {
	gen := datagen.RCV1Like(5)
	a := newCountingSketch(17)
	b := newCountingSketch(17)
	whole := newCountingSketch(17)
	for i := 0; i < 20000; i++ {
		ex := gen.Next()
		target := a
		if i%2 == 1 {
			target = b
		}
		for _, f := range ex.X {
			target.Update(f.Index, f.Value)
			whole.Update(f.Index, f.Value)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 500; i++ {
		if math.Abs(a.Estimate(i)-whole.Estimate(i)) > 1e-9 {
			t.Fatalf("merged estimate differs for feature %d", i)
		}
	}
}

// TestSparseVsDenseLogRegOnText checks the elastic-net model produces a
// much sparser model than plain LR at comparable accuracy on text.
func TestSparseVsDenseLogRegOnText(t *testing.T) {
	ext := featurize.New(featurize.Config{NGrams: 1})
	dense := linear.NewLogReg(linear.LogRegConfig{Lambda: 1e-6, Schedule: linear.Constant{Eta0: 0.1}})
	sparse := linear.NewSparseLogReg(linear.SparseLogRegConfig{
		Lambda1: 0.003, Lambda2: 1e-6, Schedule: linear.Constant{Eta0: 0.1}})
	docs := []struct {
		text string
		y    int
	}{
		{"buy cheap pills online free", 1},
		{"exclusive offer win money now", 1},
		{"meeting notes for the project", -1},
		{"see you at lunch tomorrow", -1},
	}
	fillers := strings.Fields("alpha beta gamma delta epsilon zeta eta theta iota kappa")
	var denseErr, sparseErr metrics.ErrorRate
	for i := 0; i < 8000; i++ {
		d := docs[i%len(docs)]
		text := d.text + " " + fillers[i%len(fillers)] + " " + fillers[(i*7)%len(fillers)]
		x := ext.Extract(text)
		denseErr.Record(dense.Predict(x), d.y)
		sparseErr.Record(sparse.Predict(x), d.y)
		dense.Update(x, d.y)
		sparse.Update(x, d.y)
	}
	if sparseErr.Rate() > denseErr.Rate()+0.05 {
		t.Fatalf("sparse error %.4f far above dense %.4f", sparseErr.Rate(), denseErr.Rate())
	}
	denseNNZ := len(dense.Weights())
	if sparse.NNZ() >= denseNNZ {
		t.Fatalf("elastic net kept %d weights vs dense %d", sparse.NNZ(), denseNNZ)
	}
}

// newCountingSketch builds the Count-Sketch used by the merge test.
func newCountingSketch(seed int64) *sketch.CountSketch {
	return sketch.NewCountSketch(3, 2048, seed)
}
